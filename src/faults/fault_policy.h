// Pluggable TCAM eviction policies behind a by-name factory. §II-B notes
// "the agent may run a local rule eviction mechanism" without fixing which
// one; real silicon varies (priority-ordered spill, FIFO aging, random
// replacement, LRU on match counters), and the monitor must localize
// correctly no matter which mechanism the agent runs. Each policy is a
// named strategy object owned by a TcamTable; `make_eviction_policy`
// resolves names from the CLI / experiment options and throws on unknown
// names so typos fail loudly at configuration time, not as silently
// different fault behaviour.
//
// Determinism: policies may hold private RNG state (random(seed)), seeded
// at construction. Policy-internal state (stamps, RNG) is bookkeeping in
// the same sense as the churn generator's RNG: it steers *which* faults
// fire but is not part of the network state fingerprint, so a journaled
// repair() that undoes every eviction restores a fingerprint-identical
// network regardless of the policy that picked the victims.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "src/common/rng.h"
#include "src/tcam/tcam_table.h"

namespace scout {

// Strategy interface consulted by TcamTable::evict_one. `rules` and `meta`
// are parallel spans (meta[i] carries the install/touch stamps of
// rules[i]); the policy returns the victim index, or kNone when no rule is
// eligible (policies never evict the catch-all default deny — a table
// whose only entry is the default has nothing to spill).
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::size_t pick_victim(
      std::span<const TcamRule> rules, std::span<const RuleMeta> meta) = 0;

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

// The policy a TcamTable runs when none is set explicitly (the historical
// behaviour: spill the lowest-priority non-default rule).
inline constexpr std::string_view kDefaultEvictionPolicy = "lowest-priority";

// Registered policy names, in factory order: lowest-priority, fifo,
// random, lru-touch.
[[nodiscard]] std::span<const std::string_view> eviction_policy_names();

// Resolve a policy by name. `seed` feeds policies with private randomness
// (currently only "random"); deterministic policies ignore it. Throws
// std::invalid_argument on an unknown name.
[[nodiscard]] std::unique_ptr<EvictionPolicy> make_eviction_policy(
    std::string_view name, std::uint64_t seed = 0);

}  // namespace scout
