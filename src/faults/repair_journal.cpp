#include "src/faults/repair_journal.h"

#include <stdexcept>

namespace scout {

void RepairJournal::arm(SimNetwork& net) {
  if (armed()) {
    throw std::logic_error{"RepairJournal::arm: already armed"};
  }
  net_ = &net;
  clock_mark_ = net.clock().now();
  change_log_mark_ = net.controller().change_log().size();
  controller_fault_log_mark_ = net.controller().fault_log().size();
  agent_marks_.clear();
  agent_marks_.reserve(net.agents().size());
  for (const auto& agent : net.agents()) {
    agent_marks_.push_back(
        AgentMark{agent->fault_state(), agent->fault_log().size()});
  }
  ops_.clear();
}

void RepairJournal::note_removed(SwitchId sw, const TcamRule& rule) {
  if (!armed()) return;
  ops_.push_back(RuleOp{RuleOp::Kind::kRemoved, sw, rule, TcamRule{}});
  ++stats_.ops_recorded;
}

void RepairJournal::note_added(SwitchId sw, const TcamRule& rule) {
  if (!armed()) return;
  ops_.push_back(RuleOp{RuleOp::Kind::kAdded, sw, TcamRule{}, rule});
  ++stats_.ops_recorded;
}

void RepairJournal::note_modified(SwitchId sw, const TcamRule& before,
                                  const TcamRule& after) {
  if (!armed()) return;
  ops_.push_back(RuleOp{RuleOp::Kind::kModified, sw, before, after});
  ++stats_.ops_recorded;
}

void RepairJournal::check_same_net(const SimNetwork& net) const {
  if (net_ != &net) {
    throw std::logic_error{
        "RepairJournal: repair/undo against a network it was not armed on"};
  }
}

void RepairJournal::undo_rule_ops(SimNetwork& net) {
  check_same_net(net);
  // Strict LIFO: each undo restores the table to its state before that op,
  // so later ops on the same match key (add-then-remove, remove-then-
  // re-remove across injections) unwind correctly.
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    SwitchAgent* agent = net.controller().agent(it->sw);
    if (agent == nullptr) continue;
    TcamTable& tcam = agent->tcam();
    bool ok = true;
    switch (it->kind) {
      case RuleOp::Kind::kRemoved:
        ok = tcam.install(it->before) == InstallStatus::kOk;
        break;
      case RuleOp::Kind::kAdded:
        ok = tcam.remove_one(it->after);
        break;
      case RuleOp::Kind::kModified:
        ok = tcam.replace_one(it->after, it->before);
        break;
    }
    if (!ok) {
      ops_.clear();
      ++stats_.undo_failures;
      throw std::logic_error{
          "RepairJournal: recorded op no longer undoable (state mutated "
          "outside the journal's domain?)"};
    }
    ++stats_.ops_undone;
  }
  ops_.clear();
}

void RepairJournal::repair(SimNetwork& net) {
  check_same_net(net);
  undo_rule_ops(net);

  const auto agents = net.agents();
  for (std::size_t i = 0; i < agents.size(); ++i) {
    agents[i]->restore_fault_state(agent_marks_[i].fault_state);
    agents[i]->fault_log().truncate(agent_marks_[i].fault_log_size);
  }
  net.controller().truncate_fault_log(controller_fault_log_mark_);
  net.controller().change_log().truncate(change_log_mark_);
  net.clock().reset_to(clock_mark_);
  ++stats_.repairs;
  net_ = nullptr;
}

}  // namespace scout
