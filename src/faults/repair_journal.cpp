#include "src/faults/repair_journal.h"

#include <stdexcept>

namespace scout {

void RepairJournal::arm(SimNetwork& net) {
  if (armed()) {
    throw std::logic_error{"RepairJournal::arm: already armed"};
  }
  net_ = &net;
  clock_mark_ = net.clock().now();
  change_log_mark_ = net.controller().change_log().size();
  controller_fault_log_mark_ = net.controller().fault_log().size();
  channel_mark_ = net.controller().channel().outages().size();
  agent_marks_.clear();
  agent_marks_.reserve(net.agents().size());
  for (const auto& agent : net.agents()) {
    agent_marks_.push_back(
        AgentMark{agent->fault_state(), agent->fault_log().size()});
  }
  ops_.clear();
}

void RepairJournal::note_removed(SwitchId sw, const TcamRule& rule) {
  if (!armed()) return;
  ops_.push_back(RuleOp{RuleOp::Kind::kRemoved, sw, rule, TcamRule{}, nullptr});
  ++stats_.ops_recorded;
}

void RepairJournal::note_added(SwitchId sw, const TcamRule& rule) {
  if (!armed()) return;
  ops_.push_back(RuleOp{RuleOp::Kind::kAdded, sw, TcamRule{}, rule, nullptr});
  ++stats_.ops_recorded;
}

void RepairJournal::note_modified(SwitchId sw, const TcamRule& before,
                                  const TcamRule& after) {
  if (!armed()) return;
  ops_.push_back(RuleOp{RuleOp::Kind::kModified, sw, before, after, nullptr});
  ++stats_.ops_recorded;
}

void RepairJournal::snapshot_agent(SimNetwork& net, SwitchId sw) {
  if (!armed()) return;
  check_same_net(net);
  SwitchAgent* agent = net.controller().agent(sw);
  if (agent == nullptr) return;
  auto snap = std::make_unique<AgentSnapshot>();
  const auto rules = agent->tcam().rules();
  snap->tcam.assign(rules.begin(), rules.end());
  const auto view = agent->logical_view();
  snap->view.assign(view.begin(), view.end());
  RuleOp op;
  op.kind = RuleOp::Kind::kAgentSnapshot;
  op.sw = sw;
  op.snapshot = std::move(snap);
  ops_.push_back(std::move(op));
  ++stats_.ops_recorded;
}

void RepairJournal::check_same_net(const SimNetwork& net) const {
  if (net_ != &net) {
    throw std::logic_error{
        "RepairJournal: repair/undo against a network it was not armed on"};
  }
}

void RepairJournal::undo_rule_ops(SimNetwork& net) {
  check_same_net(net);
  // Strict LIFO: each undo restores the table to its state before that op,
  // so later ops on the same match key (add-then-remove, remove-then-
  // re-remove across injections) unwind correctly.
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    SwitchAgent* agent = net.controller().agent(it->sw);
    if (agent == nullptr) continue;
    TcamTable& tcam = agent->tcam();
    bool ok = true;
    switch (it->kind) {
      case RuleOp::Kind::kRemoved:
        ok = tcam.install(it->before) == InstallStatus::kOk;
        break;
      case RuleOp::Kind::kAdded:
        ok = tcam.remove_one(it->after);
        break;
      case RuleOp::Kind::kModified:
        ok = tcam.replace_one(it->after, it->before);
        break;
      case RuleOp::Kind::kAgentSnapshot:
        agent->restore_images(it->snapshot->tcam, it->snapshot->view);
        break;
    }
    if (!ok) {
      ops_.clear();
      ++stats_.undo_failures;
      throw std::logic_error{
          "RepairJournal: recorded op no longer undoable (state mutated "
          "outside the journal's domain?)"};
    }
    ++stats_.ops_undone;
  }
  ops_.clear();
}

void RepairJournal::repair(SimNetwork& net) {
  check_same_net(net);
  undo_rule_ops(net);

  const auto agents = net.agents();
  for (std::size_t i = 0; i < agents.size(); ++i) {
    agents[i]->restore_fault_state(agent_marks_[i].fault_state);
    agents[i]->fault_log().truncate(agent_marks_[i].fault_log_size);
  }
  net.controller().truncate_fault_log(controller_fault_log_mark_);
  net.controller().change_log().truncate(change_log_mark_);
  net.controller().channel().truncate(channel_mark_);
  net.clock().reset_to(clock_mark_);
  ++stats_.repairs;
  net_ = nullptr;
}

}  // namespace scout
