#include "src/faults/gray_faults.h"

#include <algorithm>

#include "src/controller/controller.h"
#include "src/faults/repair_journal.h"
#include "src/scout/sim_network.h"

namespace scout {

TcamRule perturb_rendered_rule(TcamRule rule, Rng& rng) {
  TernaryField* fields[] = {&rule.vrf, &rule.src_epg, &rule.dst_epg,
                            &rule.proto, &rule.dst_port};
  const int widths[] = {FieldWidths::kVrf, FieldWidths::kEpg, FieldWidths::kEpg,
                        FieldWidths::kProto, FieldWidths::kPort};
  const std::size_t f = rng.below(5);
  const auto bit = static_cast<std::uint32_t>(
      rng.below(static_cast<std::uint64_t>(widths[f])));
  if (rng.chance(0.5)) {
    fields[f]->value ^= (1U << bit);
    fields[f]->value &= fields[f]->mask;
  } else {
    fields[f]->mask ^= (1U << bit);
    fields[f]->value &= fields[f]->mask;
  }
  return rule;
}

GrayScenarioOutcome run_gray_agent_scenario(SimNetwork& net,
                                            const GrayFaultProfile& profile,
                                            std::size_t n_gray,
                                            std::uint64_t seed,
                                            RepairJournal* journal) {
  GrayScenarioOutcome out;
  const auto agents = net.agents();
  if (agents.empty() || n_gray == 0) return out;
  Rng rng{derive_seed(seed, 0x6B47)};
  n_gray = std::min(n_gray, agents.size());
  for (const std::size_t idx : rng.sample_indices(agents.size(), n_gray)) {
    SwitchAgent& agent = *agents[idx];
    if (journal != nullptr) journal->snapshot_agent(net, agent.id());
    const std::uint64_t mis_before = agent.gray_misrenders();
    const std::uint64_t drop_before = agent.gray_drops();
    // Per-agent gray seed derived from the agent id, not the pick order:
    // the same agent grays the same way no matter who else was picked.
    agent.set_gray_profile(profile,
                           derive_seed(seed, agent.id().value()));
    // Resync through the now-gray agent so the profile bites immediately.
    // On a healthy agent this round-trip is fingerprint-neutral; every
    // divergence the checker finds afterwards is gray damage.
    net.controller().resync_switch(agent.id());
    ++out.resyncs;
    ++out.agents_grayed;
    out.misrenders += agent.gray_misrenders() - mis_before;
    out.drops += agent.gray_drops() - drop_before;
  }
  return out;
}

GrayScenarioOutcome run_reordered_delivery_scenario(SimNetwork& net,
                                                    std::size_t window,
                                                    std::size_t n_resyncs,
                                                    std::uint64_t seed,
                                                    RepairJournal* journal) {
  GrayScenarioOutcome out;
  const auto agents = net.agents();
  if (agents.empty() || window == 0 || n_resyncs == 0) return out;
  Rng rng{derive_seed(seed, 0x2E0D)};
  n_resyncs = std::min(n_resyncs, agents.size());
  const auto picks = rng.sample_indices(agents.size(), n_resyncs);
  // Snapshot before the channel goes gray: reordering a resync's removes
  // against its adds can strand stale rules or strip fresh ones, and no
  // per-op record captures "the remove landed after the add it was meant
  // to precede".
  if (journal != nullptr) {
    for (const std::size_t idx : picks) {
      journal->snapshot_agent(net, agents[idx]->id());
    }
  }
  Controller& controller = net.controller();
  ChannelDelayProfile delay;
  delay.window = window;
  delay.reorder_rate = 1.0;
  delay.seed = derive_seed(seed, 0xDE11);
  controller.set_channel_delay(delay);
  for (const std::size_t idx : picks) {
    controller.resync_switch(agents[idx]->id());
    ++out.resyncs;
    ++out.agents_grayed;
  }
  // Back to immediate delivery; set_channel_delay flushes the tail batch
  // under the gray profile first.
  controller.set_channel_delay(ChannelDelayProfile{});
  return out;
}

}  // namespace scout
