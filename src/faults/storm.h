// Correlated fault storms: topology-derived episodes that take out
// *groups* of devices together. The point faults elsewhere in src/faults
// are independent; real outages are not — a rack PDU trips and every
// switch in the rack crash-loops at once, a rolling controller upgrade
// recompiles the policy mid-churn, a pod's management network browns out
// and the whole pod goes unreachable together. Correlated evidence is
// what makes localization ambiguous (one root cause, many symptoms), so
// the storm engine is how the monitor earns its robustness claims.
//
// Topology model: the Fabric has no rack metadata, so racks are derived
// deterministically from agent order — rack = agent_index / rack_size,
// pod = rack / racks_per_pod. That matches how leaf_spine() and the
// experiment fabrics lay out leaves (consecutive ids share a rack) and
// keeps every episode a pure function of (profile, seed, episode index).
//
// Journal compatibility: every episode snapshots each agent it will touch
// before touching it and only flaps currently-connected switches, so all
// fault records and outages it raises are post-watermark — repair() is
// fingerprint-exact. Without a journal (continuous monitoring) episodes
// end in a recovered, resynced state, so the fabric survives storm after
// storm while the monitor watches the damage unfold and heal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/stream/cause.h"

namespace scout {

class SimNetwork;
class RepairJournal;

// A named storm shape, resolved by storm_profile(). rack_size /
// racks_per_pod bound the blast radius against the fabric's agent count.
struct StormProfile {
  enum class Kind : std::uint8_t {
    kRackPower,       // a rack's agents crash together, then recover
    kRollingUpgrade,  // controller recompiles mid-churn + resyncs a switch
    kPodBrownout      // a pod's control channels flap together
  };
  std::string name;
  Kind kind = Kind::kRackPower;
  std::size_t rack_size = 4;
  std::size_t racks_per_pod = 2;
};

// Registered storm profile names, in factory order: rack-power,
// rolling-upgrade, pod-brownout.
[[nodiscard]] std::span<const std::string_view> storm_profile_names();

// Resolve a profile by name; throws std::invalid_argument on unknown
// names so CLI typos fail at configuration time.
[[nodiscard]] StormProfile storm_profile(std::string_view name);

// Deterministic episode generator over one network. Each run_episode()
// derives its blast target from derive_seed(seed, episode_index), so a
// schedule replays identically for a given (profile, seed) no matter how
// the caller paces it.
class StormSchedule {
 public:
  StormSchedule(SimNetwork& net, StormProfile profile, std::uint64_t seed);

  struct Stats {
    std::size_t episodes = 0;
    std::size_t agents_crashed = 0;
    std::size_t channels_flapped = 0;
    std::size_t recompiles = 0;
    std::size_t resyncs = 0;
  };

  // Fire one episode. With an armed journal every touched agent is
  // snapshotted first and the episode repairs fingerprint-exactly.
  //
  // In split mode (set_split_episodes) a call alternates: damage phase
  // now, heal phase on the *next* call — so the monitor's verdicts get to
  // observe the broken fabric between the two. If the previous call left
  // a heal pending, this call heals and fires no new damage.
  void run_episode(RepairJournal* journal = nullptr);

  // Default off: an episode damages and heals atomically within one call
  // (the fabric is consistent again before the next drain — the shape the
  // fault-storm digest gates pin). On: damage and heal split across two
  // calls. Incident-provenance legs need the split so a failing verdict
  // can ever observe a storm.
  void set_split_episodes(bool on) noexcept { split_episodes_ = on; }
  [[nodiscard]] bool heal_pending() const noexcept {
    return !pending_heal_.empty();
  }

  // Incident-provenance ground truth: one entry per switch the episode's
  // damage phase touches, all under the episode's CauseId. Minting is a
  // counter bump; attaching a ledger never changes episode behaviour.
  void set_cause_ledger(stream::CauseLedger* ledger) noexcept {
    ledger_ = ledger;
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const StormProfile& profile() const noexcept {
    return profile_;
  }

 private:
  void rack_power(std::uint64_t episode_seed, RepairJournal* journal);
  void rolling_upgrade(std::uint64_t episode_seed, RepairJournal* journal);
  void pod_brownout(std::uint64_t episode_seed, RepairJournal* journal);
  void heal(RepairJournal* journal);
  void record_truth(SwitchId sw);

  SimNetwork* net_;
  StormProfile profile_;
  std::uint64_t seed_;
  std::size_t episode_ = 0;
  Stats stats_;
  bool split_episodes_ = false;
  // Agent indices damaged by the last split episode, awaiting heal; the
  // heal runs under the same episode cause so recovery events attribute
  // to the storm that forced them.
  std::vector<std::size_t> pending_heal_;
  stream::CauseId episode_cause_{};
  stream::CauseLedger* ledger_ = nullptr;
};

}  // namespace scout
