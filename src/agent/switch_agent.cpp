#include "src/agent/switch_agent.h"

#include <algorithm>
#include <sstream>

#include "src/stream/event_bus.h"

namespace scout {

ApplyStatus SwitchAgent::apply(const Instruction& ins, SimTime now) {
  if (!responsive_) return ApplyStatus::kLost;
  if (crashed_) return ApplyStatus::kCrashed;
  if (crash_countdown_ != kNoCrash && crash_countdown_ == 0) {
    crashed_ = true;
    fault_log_.raise(now, info_.id, FaultCode::kAgentCrash,
                     FaultSeverity::kCritical, "agent process crashed");
    stream::publish_event(
        bus_, stream::make_switch_event(
                  stream::StreamEventType::kAgentCrashed, info_.id, now));
    return ApplyStatus::kCrashed;
  }
  if (crash_countdown_ != kNoCrash) --crash_countdown_;

  // Gray drop: ACK the instruction and render nothing — no TCAM change,
  // no logical-view change, no event, no fault record. The controller
  // books a success; only L-T divergence can betray the loss. The ledger
  // still records the burst (it *is* ground truth), which is what makes
  // drops show up as unattributable incidents: truth with no event to
  // carry the cause.
  const bool drop_burst_open = gray_drop_left_ > 0;
  if (gray_fire(gray_drop_left_, gray_profile_.drop_rate,
                gray_profile_.drop_burst)) {
    ++gray_drops_;
    if (!drop_burst_open) gray_drop_cause_ = mint_gray_cause();
    if (cause_ledger_ != nullptr) {
      cause_ledger_->record(gray_drop_cause_, info_.id, now);
    }
    return ApplyStatus::kApplied;
  }

  switch (ins.op) {
    case InstructionOp::kAddRule: {
      logical_view_.push_back(ins.rule);
      TcamRule hw_rule = ins.rule.rule;
      if (vrf_rewrite_bug_.has_value() && hw_rule.vrf.mask != 0) {
        // The buggy agent writes a wrong VRF id into the hardware entry.
        hw_rule.vrf =
            TernaryField::exact(*vrf_rewrite_bug_, FieldWidths::kVrf);
      }
      // Gray misrender: the ACKed rule lands in TCAM perturbed. Applied
      // after the VRF bug (both are rendering-stage faults) and before
      // install, so the overflow check and the published event both see
      // the wrong image the hardware actually holds. The catch-all deny
      // is exempt — misrendering a full wildcard has no bits to garble.
      stream::CauseId install_cause{};
      const bool misrender_burst_open = gray_misrender_left_ > 0;
      if (!hw_rule.wildcard_all() &&
          gray_fire(gray_misrender_left_, gray_profile_.misrender_rate,
                    gray_profile_.misrender_burst)) {
        hw_rule = perturb_rendered_rule(hw_rule, gray_rng_);
        ++gray_misrenders_;
        if (!misrender_burst_open) gray_misrender_cause_ = mint_gray_cause();
        install_cause = gray_misrender_cause_;
        if (cause_ledger_ != nullptr) {
          cause_ledger_->record(install_cause, info_.id, now);
        }
      }
      if (tcam_.install(hw_rule) == InstallStatus::kOverflow) {
        std::ostringstream detail;
        detail << "TCAM full (" << tcam_.size() << '/' << tcam_.capacity()
               << "), rule rejected";
        fault_log_.raise(now, info_.id, FaultCode::kTcamOverflow,
                         FaultSeverity::kCritical, detail.str());
        stream::publish_event(
            bus_, stream::make_switch_event(
                      stream::StreamEventType::kTcamOverflow, info_.id, now));
        return ApplyStatus::kTcamOverflow;
      }
      // Publish the rendered hardware image, not the instruction: a
      // VRF-rewrite bug must be as visible on the stream as in the TCAM.
      // The explicit cause stamp marks exactly the misrendered installs;
      // clean installs from the same push stay null (the bus only fills
      // null stamps from the ambient scope).
      stream::StreamEvent ev = stream::make_switch_event(
          stream::StreamEventType::kRuleInstalled, info_.id, now);
      ev.rule = hw_rule;
      ev.cause = install_cause;
      stream::publish_event(bus_, std::move(ev));
      return ApplyStatus::kApplied;
    }
    case InstructionOp::kRemoveRule: {
      const TcamRule& target = ins.rule.rule;
      logical_view_.erase(
          std::remove_if(logical_view_.begin(), logical_view_.end(),
                         [&target](const LogicalRule& lr) {
                           return lr.rule.same_match(target);
                         }),
          logical_view_.end());
      const std::size_t removed = tcam_.remove_if(
          [&target](const TcamRule& r) { return r.same_match(target); });
      if (removed > 0) {
        stream::StreamEvent ev = stream::make_switch_event(
            stream::StreamEventType::kRulesRemoved, info_.id, now);
        ev.rule = target;
        ev.count = removed;
        stream::publish_event(bus_, std::move(ev));
      }
      return ApplyStatus::kApplied;
    }
  }
  return ApplyStatus::kApplied;
}

void SwitchAgent::recover(SimTime now) {
  if (!crashed_) return;
  crashed_ = false;
  crash_countdown_ = kNoCrash;
  // Find the open crash record and clear it.
  for (std::size_t i = fault_log_.size(); i-- > 0;) {
    const auto& rec = fault_log_.records()[i];
    if (rec.code == FaultCode::kAgentCrash && !rec.cleared.has_value()) {
      fault_log_.clear(i, now);
      break;
    }
  }
  stream::publish_event(
      bus_, stream::make_switch_event(
                stream::StreamEventType::kAgentRecovered, info_.id, now));
}

stream::CauseId SwitchAgent::mint_gray_cause() noexcept {
  // Ordinal packs (agent id, per-agent burst counter): gray causes are
  // minted by many agents, each with a private counter, so the id keeps
  // them globally unique. Pure counter arithmetic — no RNG draw.
  return stream::CauseId::make(
      stream::CauseEngine::kGray,
      (static_cast<std::uint64_t>(info_.id.value()) << 20) | ++gray_bursts_);
}

bool SwitchAgent::gray_fire(std::size_t& burst_left, double rate,
                            std::size_t burst) {
  if (burst_left > 0) {
    --burst_left;
    return true;
  }
  if (rate <= 0.0) return false;
  if (!gray_rng_.chance(rate)) return false;
  burst_left = burst > 0 ? burst - 1 : 0;
  return true;
}

std::vector<TcamRule> SwitchAgent::collect_tcam() const {
  const auto rules = tcam_.rules();
  // Partial resync: a gray collection returns only a stale prefix of the
  // table — the collector read a snapshot mid-update and never noticed.
  if (gray_profile_.collect_keep_fraction < 1.0) {
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(rules.size()) *
        gray_profile_.collect_keep_fraction);
    return {rules.begin(), rules.begin() + static_cast<std::ptrdiff_t>(keep)};
  }
  return {rules.begin(), rules.end()};
}

void SwitchAgent::restore_images(std::span<const TcamRule> tcam_rules,
                                 std::span<const LogicalRule> view) {
  tcam_.clear();
  for (const TcamRule& r : tcam_rules) {
    (void)tcam_.install(r);  // snapshot came from this table; it fits
  }
  logical_view_.assign(view.begin(), view.end());
}

std::size_t SwitchAgent::evict_rules(std::size_t n, SimTime now) {
  std::size_t evicted = 0;
  for (; evicted < n; ++evicted) {
    const std::optional<TcamRule> victim = tcam_.evict_one();
    if (!victim.has_value()) break;
    stream::StreamEvent ev = stream::make_switch_event(
        stream::StreamEventType::kRuleEvicted, info_.id, now);
    ev.rule = *victim;
    stream::publish_event(bus_, std::move(ev));
  }
  if (evicted > 0) {
    std::ostringstream detail;
    detail << "local eviction removed " << evicted << " rules";
    fault_log_.raise(now, info_.id, FaultCode::kRuleEviction,
                     FaultSeverity::kWarning, detail.str());
  }
  return evicted;
}

std::optional<TcamTable::Corruption> SwitchAgent::corrupt_tcam_bit(
    Rng& rng, SimTime now, double detection_probability) {
  const auto corruption = tcam_.corrupt_random_bit(rng);
  if (!corruption.has_value()) return std::nullopt;
  if (rng.chance(detection_probability)) {
    std::ostringstream detail;
    detail << "parity error detected in TCAM entry " << corruption->index;
    fault_log_.raise(now, info_.id, FaultCode::kTcamParityError,
                     FaultSeverity::kCritical, detail.str());
  }
  // Published whether or not the parity error was detected: the event
  // stream is the verifier's substrate, the fault log the operator's. A
  // real deployment's undetected corruption surfaces at the next TCAM
  // collection; the monitor scenario models the collection-free path.
  stream::StreamEvent ev = stream::make_switch_event(
      stream::StreamEventType::kRuleModified, info_.id, now);
  ev.rule = corruption->before;
  ev.rule_after = corruption->after;
  ev.tcam_index = corruption->index;
  stream::publish_event(bus_, std::move(ev));
  return corruption;
}

}  // namespace scout
