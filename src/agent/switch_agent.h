// Switch agent: the per-device software that receives controller
// instructions, maintains a local logical view of the policy, and renders
// TCAM rules (paper §II-A). The agent is where most of §II-B's failure
// modes live: it can be unresponsive (instructions silently lost), crash
// mid-batch, overflow its TCAM, evict rules locally, or corrupt TCAM bits.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "src/agent/fault_log.h"
#include "src/checker/logical_rule.h"
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/faults/gray_faults.h"
#include "src/stream/cause.h"
#include "src/tcam/tcam_table.h"
#include "src/topology/fabric.h"

namespace scout {

namespace stream {
class EventBus;
}  // namespace stream

enum class InstructionOp : std::uint8_t { kAddRule, kRemoveRule };

// The controller-to-agent instruction unit. Real systems ship object-level
// deltas (OpFlex, OpenFlow flow-mods); the observable effect either way is
// rule-level adds/removes against the local view, which is what the fault
// model needs.
struct Instruction {
  InstructionOp op = InstructionOp::kAddRule;
  LogicalRule rule;
};

enum class ApplyStatus : std::uint8_t {
  kApplied,
  kLost,          // agent unresponsive / channel down: instruction vanished
  kCrashed,       // agent crashed before applying
  kTcamOverflow,  // applied to logical view; TCAM rejected the rule
};

class SwitchAgent {
 public:
  SwitchAgent(SwitchInfo info, std::size_t tcam_capacity)
      : info_(std::move(info)), tcam_(tcam_capacity) {}

  [[nodiscard]] SwitchId id() const noexcept { return info_.id; }
  [[nodiscard]] const SwitchInfo& info() const noexcept { return info_; }

  // Continuous-verification hook (src/stream): while attached, every TCAM
  // mutation this agent performs — post-rendering, so software bugs are
  // visible — and every crash/recover transition publishes one typed
  // event. nullptr (the default) detaches; no behaviour changes otherwise.
  void attach_event_bus(stream::EventBus* bus) noexcept { bus_ = bus; }

  // -- control-plane behaviour ------------------------------------------------
  ApplyStatus apply(const Instruction& ins, SimTime now);

  // -- state inspection -------------------------------------------------------
  [[nodiscard]] const TcamTable& tcam() const noexcept { return tcam_; }
  [[nodiscard]] TcamTable& tcam() noexcept { return tcam_; }
  [[nodiscard]] std::span<const LogicalRule> logical_view() const noexcept {
    return logical_view_;
  }
  [[nodiscard]] const FaultLog& fault_log() const noexcept {
    return fault_log_;
  }
  [[nodiscard]] FaultLog& fault_log() noexcept { return fault_log_; }

  // Collect the deployed rules, as the paper's periodic TCAM collection
  // does. (A copy: the collector reads device state, it does not alias it.)
  [[nodiscard]] std::vector<TcamRule> collect_tcam() const;

  // -- fault behaviour knobs (driven by src/faults) ---------------------------
  void set_responsive(bool r) noexcept { responsive_ = r; }
  [[nodiscard]] bool responsive() const noexcept { return responsive_; }

  // Crash after `n` more successfully applied instructions; the crash is
  // recorded in the device fault log when it triggers.
  void crash_after(std::size_t n) noexcept { crash_countdown_ = n; }
  void recover(SimTime now);
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

  // Software-bug injection: while set, newly rendered rules get this VRF id
  // written into TCAM instead of the correct one (paper §IV-B cites software
  // bugs that "modify object's value wrong at controller or switch agent").
  void set_vrf_rewrite_bug(std::optional<std::uint16_t> wrong_vrf) noexcept {
    vrf_rewrite_bug_ = wrong_vrf;
  }

  // Gray misbehaviour (src/faults/gray_faults.h): intermittent misrenders,
  // silent instruction drops, stale partial collections. The per-agent
  // gray RNG is reseeded here so two agents with the same profile fault
  // independently yet each run reproduces bit-exactly.
  void set_gray_profile(const GrayFaultProfile& profile,
                        std::uint64_t seed) noexcept {
    gray_profile_ = profile;
    gray_rng_.reseed(seed);
    gray_misrender_left_ = 0;
    gray_drop_left_ = 0;
  }
  [[nodiscard]] const GrayFaultProfile& gray_profile() const noexcept {
    return gray_profile_;
  }
  // Lifetime gray-fault counts (telemetry feed; monotone, not rolled back
  // by repair — a repaired network forgets the damage, not the history).
  [[nodiscard]] std::uint64_t gray_misrenders() const noexcept {
    return gray_misrenders_;
  }
  [[nodiscard]] std::uint64_t gray_drops() const noexcept {
    return gray_drops_;
  }

  // Incident-provenance ground truth: while attached, every gray burst
  // this agent opens records one ledger entry per fired instruction.
  // Causes are minted whether or not a ledger is attached (the mint is a
  // counter bump, never an RNG draw), so attaching one cannot change
  // behaviour or digests. Serial control phase only — gray faults fire
  // inside controller pushes, which never overlap the publisher threads.
  void set_cause_ledger(stream::CauseLedger* ledger) noexcept {
    cause_ledger_ = ledger;
  }

  // Local eviction: drop `n` lowest-priority rules from TCAM (logical view
  // keeps them — the controller is unaware, §II-B). Logged as RULE_EVICTION.
  std::size_t evict_rules(std::size_t n, SimTime now);

  // Corrupt one random TCAM bit; logs a parity error only with probability
  // `detection_probability` (silent corruption is the hard case: no fault
  // log to correlate, paper §V-B end note). Returns what changed so a
  // repair journal can undo the flip exactly.
  std::optional<TcamTable::Corruption> corrupt_tcam_bit(
      Rng& rng, SimTime now, double detection_probability);

  // Raw snapshot/restore of the fault-behaviour knobs (repair-journal
  // support: a cell that crashed or silenced this agent puts the flags
  // back exactly as it found them).
  struct FaultState {
    bool responsive = true;
    bool crashed = false;
    std::size_t crash_countdown = std::numeric_limits<std::size_t>::max();
    std::optional<std::uint16_t> vrf_rewrite_bug;
    GrayFaultProfile gray_profile{};
    // The gray RNG and open burst counters travel with the state (Rng is
    // a copyable value), so a restored agent replays its gray behaviour
    // bit-exactly from the restore point.
    Rng gray_rng{0};
    std::size_t gray_misrender_left = 0;
    std::size_t gray_drop_left = 0;
  };
  [[nodiscard]] FaultState fault_state() const noexcept {
    return FaultState{responsive_,   crashed_,
                      crash_countdown_, vrf_rewrite_bug_,
                      gray_profile_, gray_rng_,
                      gray_misrender_left_, gray_drop_left_};
  }
  void restore_fault_state(const FaultState& s) noexcept {
    responsive_ = s.responsive;
    crashed_ = s.crashed;
    crash_countdown_ = s.crash_countdown;
    vrf_rewrite_bug_ = s.vrf_rewrite_bug;
    gray_profile_ = s.gray_profile;
    gray_rng_ = s.gray_rng;
    gray_misrender_left_ = s.gray_misrender_left;
    gray_drop_left_ = s.gray_drop_left;
  }

  // Bulk image restore for the repair journal's agent snapshots: wipe and
  // re-install the given TCAM rules (snapshot order is table order, so
  // equal-priority install order is preserved) and assign the logical
  // view. Publishes nothing — repair is outside the observed timeline.
  void restore_images(std::span<const TcamRule> tcam_rules,
                      std::span<const LogicalRule> view);

 private:
  static constexpr std::size_t kNoCrash =
      std::numeric_limits<std::size_t>::max();

  SwitchInfo info_;
  TcamTable tcam_;
  std::vector<LogicalRule> logical_view_;
  FaultLog fault_log_;
  stream::EventBus* bus_ = nullptr;

  // Burst-aware gray trial: an open burst always fires; otherwise one
  // RNG draw decides, opening a new burst on success. Consumes RNG only
  // while a rate is set, so inactive profiles stay draw-for-draw
  // identical to agents that never heard of gray faults.
  [[nodiscard]] bool gray_fire(std::size_t& burst_left, double rate,
                               std::size_t burst);
  [[nodiscard]] stream::CauseId mint_gray_cause() noexcept;

  bool responsive_ = true;
  bool crashed_ = false;
  std::size_t crash_countdown_ = kNoCrash;
  std::optional<std::uint16_t> vrf_rewrite_bug_;
  GrayFaultProfile gray_profile_;
  Rng gray_rng_{0};
  std::size_t gray_misrender_left_ = 0;
  std::size_t gray_drop_left_ = 0;
  std::uint64_t gray_misrenders_ = 0;
  std::uint64_t gray_drops_ = 0;
  // Provenance bookkeeping: one CauseId per gray burst (shared counter
  // across misrender and drop bursts so ordinals never collide), the
  // currently open bursts' ids, and the optional ground-truth ledger.
  // Deliberately outside FaultState: like the lifetime counters, history
  // is not rolled back by repair.
  std::uint64_t gray_bursts_ = 0;
  stream::CauseId gray_misrender_cause_{};
  stream::CauseId gray_drop_cause_{};
  stream::CauseLedger* cause_ledger_ = nullptr;
};

}  // namespace scout
