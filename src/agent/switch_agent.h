// Switch agent: the per-device software that receives controller
// instructions, maintains a local logical view of the policy, and renders
// TCAM rules (paper §II-A). The agent is where most of §II-B's failure
// modes live: it can be unresponsive (instructions silently lost), crash
// mid-batch, overflow its TCAM, evict rules locally, or corrupt TCAM bits.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "src/agent/fault_log.h"
#include "src/checker/logical_rule.h"
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/tcam/tcam_table.h"
#include "src/topology/fabric.h"

namespace scout {

namespace stream {
class EventBus;
}  // namespace stream

enum class InstructionOp : std::uint8_t { kAddRule, kRemoveRule };

// The controller-to-agent instruction unit. Real systems ship object-level
// deltas (OpFlex, OpenFlow flow-mods); the observable effect either way is
// rule-level adds/removes against the local view, which is what the fault
// model needs.
struct Instruction {
  InstructionOp op = InstructionOp::kAddRule;
  LogicalRule rule;
};

enum class ApplyStatus : std::uint8_t {
  kApplied,
  kLost,          // agent unresponsive / channel down: instruction vanished
  kCrashed,       // agent crashed before applying
  kTcamOverflow,  // applied to logical view; TCAM rejected the rule
};

class SwitchAgent {
 public:
  SwitchAgent(SwitchInfo info, std::size_t tcam_capacity)
      : info_(std::move(info)), tcam_(tcam_capacity) {}

  [[nodiscard]] SwitchId id() const noexcept { return info_.id; }
  [[nodiscard]] const SwitchInfo& info() const noexcept { return info_; }

  // Continuous-verification hook (src/stream): while attached, every TCAM
  // mutation this agent performs — post-rendering, so software bugs are
  // visible — and every crash/recover transition publishes one typed
  // event. nullptr (the default) detaches; no behaviour changes otherwise.
  void attach_event_bus(stream::EventBus* bus) noexcept { bus_ = bus; }

  // -- control-plane behaviour ------------------------------------------------
  ApplyStatus apply(const Instruction& ins, SimTime now);

  // -- state inspection -------------------------------------------------------
  [[nodiscard]] const TcamTable& tcam() const noexcept { return tcam_; }
  [[nodiscard]] TcamTable& tcam() noexcept { return tcam_; }
  [[nodiscard]] std::span<const LogicalRule> logical_view() const noexcept {
    return logical_view_;
  }
  [[nodiscard]] const FaultLog& fault_log() const noexcept {
    return fault_log_;
  }
  [[nodiscard]] FaultLog& fault_log() noexcept { return fault_log_; }

  // Collect the deployed rules, as the paper's periodic TCAM collection
  // does. (A copy: the collector reads device state, it does not alias it.)
  [[nodiscard]] std::vector<TcamRule> collect_tcam() const;

  // -- fault behaviour knobs (driven by src/faults) ---------------------------
  void set_responsive(bool r) noexcept { responsive_ = r; }
  [[nodiscard]] bool responsive() const noexcept { return responsive_; }

  // Crash after `n` more successfully applied instructions; the crash is
  // recorded in the device fault log when it triggers.
  void crash_after(std::size_t n) noexcept { crash_countdown_ = n; }
  void recover(SimTime now);
  [[nodiscard]] bool crashed() const noexcept { return crashed_; }

  // Software-bug injection: while set, newly rendered rules get this VRF id
  // written into TCAM instead of the correct one (paper §IV-B cites software
  // bugs that "modify object's value wrong at controller or switch agent").
  void set_vrf_rewrite_bug(std::optional<std::uint16_t> wrong_vrf) noexcept {
    vrf_rewrite_bug_ = wrong_vrf;
  }

  // Local eviction: drop `n` lowest-priority rules from TCAM (logical view
  // keeps them — the controller is unaware, §II-B). Logged as RULE_EVICTION.
  std::size_t evict_rules(std::size_t n, SimTime now);

  // Corrupt one random TCAM bit; logs a parity error only with probability
  // `detection_probability` (silent corruption is the hard case: no fault
  // log to correlate, paper §V-B end note). Returns what changed so a
  // repair journal can undo the flip exactly.
  std::optional<TcamTable::Corruption> corrupt_tcam_bit(
      Rng& rng, SimTime now, double detection_probability);

  // Raw snapshot/restore of the fault-behaviour knobs (repair-journal
  // support: a cell that crashed or silenced this agent puts the flags
  // back exactly as it found them).
  struct FaultState {
    bool responsive = true;
    bool crashed = false;
    std::size_t crash_countdown = std::numeric_limits<std::size_t>::max();
    std::optional<std::uint16_t> vrf_rewrite_bug;
  };
  [[nodiscard]] FaultState fault_state() const noexcept {
    return FaultState{responsive_, crashed_, crash_countdown_,
                      vrf_rewrite_bug_};
  }
  void restore_fault_state(const FaultState& s) noexcept {
    responsive_ = s.responsive;
    crashed_ = s.crashed;
    crash_countdown_ = s.crash_countdown;
    vrf_rewrite_bug_ = s.vrf_rewrite_bug;
  }

 private:
  static constexpr std::size_t kNoCrash =
      std::numeric_limits<std::size_t>::max();

  SwitchInfo info_;
  TcamTable tcam_;
  std::vector<LogicalRule> logical_view_;
  FaultLog fault_log_;
  stream::EventBus* bus_ = nullptr;

  bool responsive_ = true;
  bool crashed_ = false;
  std::size_t crash_countdown_ = kNoCrash;
  std::optional<std::uint16_t> vrf_rewrite_bug_;
};

}  // namespace scout
