#include "src/agent/fault_log.h"

#include <stdexcept>

namespace scout {

std::string_view to_string(FaultCode c) noexcept {
  switch (c) {
    case FaultCode::kTcamOverflow:
      return "TCAM_OVERFLOW";
    case FaultCode::kTcamParityError:
      return "TCAM_PARITY_ERROR";
    case FaultCode::kAgentCrash:
      return "AGENT_CRASH";
    case FaultCode::kSwitchUnreachable:
      return "SWITCH_UNREACHABLE";
    case FaultCode::kRuleEviction:
      return "RULE_EVICTION";
  }
  return "?";
}

std::size_t FaultLog::raise(SimTime t, SwitchId sw, FaultCode code,
                            FaultSeverity severity, std::string detail) {
  records_.push_back(FaultRecord{t, std::nullopt, sw, code, severity,
                                 std::move(detail)});
  return records_.size() - 1;
}

void FaultLog::clear(std::size_t index, SimTime t) {
  if (index >= records_.size()) {
    throw std::out_of_range{"FaultLog::clear: bad index"};
  }
  records_[index].cleared = t;
}

std::vector<FaultRecord> FaultLog::active_at(SimTime t) const {
  std::vector<FaultRecord> out;
  for (const auto& r : records_) {
    if (r.active_at(t)) out.push_back(r);
  }
  return out;
}

void FaultLog::merge_from(const FaultLog& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
}

}  // namespace scout
