// Device/controller fault logs (paper §V-A). Switch agents log hardware and
// software faults (TCAM overflow, parity errors, crashes); the controller
// logs control-channel faults (unreachable switch). The event-correlation
// engine joins these against the policy change log.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/sim_clock.h"

namespace scout {

enum class FaultCode : std::uint8_t {
  kTcamOverflow,       // rule installation rejected: table full
  kTcamParityError,    // hardware corruption detected
  kAgentCrash,         // switch agent process died
  kSwitchUnreachable,  // control channel down (controller-side)
  kRuleEviction,       // local eviction mechanism removed rules
};

[[nodiscard]] std::string_view to_string(FaultCode c) noexcept;

enum class FaultSeverity : std::uint8_t { kInfo, kWarning, kCritical };

struct FaultRecord {
  SimTime raised;
  std::optional<SimTime> cleared;  // nullopt = still active
  SwitchId sw;
  FaultCode code = FaultCode::kTcamOverflow;
  FaultSeverity severity = FaultSeverity::kWarning;
  std::string detail;

  // "Active at t": raised on or before t and not yet cleared at t. This is
  // the predicate the correlation engine evaluates at change timestamps.
  [[nodiscard]] bool active_at(SimTime t) const noexcept {
    return raised <= t && (!cleared.has_value() || t <= *cleared);
  }
};

class FaultLog {
 public:
  // Returns the index of the new record (for later clear()).
  std::size_t raise(SimTime t, SwitchId sw, FaultCode code,
                    FaultSeverity severity, std::string detail);

  void clear(std::size_t index, SimTime t);

  [[nodiscard]] std::span<const FaultRecord> records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::vector<FaultRecord> active_at(SimTime t) const;
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  // Drop every record at index >= `n` (repair-journal watermark support).
  // Clears applied to records below the watermark are NOT undone; the
  // journal's domain excludes in-place edits of pre-watermark records.
  void truncate(std::size_t n) {
    if (n < records_.size()) records_.resize(n);
  }

  // Merge another log (e.g. collect all device logs at the controller).
  void merge_from(const FaultLog& other);

 private:
  std::vector<FaultRecord> records_;
};

}  // namespace scout
