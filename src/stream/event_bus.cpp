#include "src/stream/event_bus.h"

#include <algorithm>
#include <stdexcept>

#include "src/policy/change_log.h"

namespace scout::stream {
namespace {

// Per-thread publish route. A thread holding a ConcurrentPublishCapability
// for bus B has publish() on B appending to its ring shard; every other
// (bus, thread) combination stays on the serial path.
struct PublishRoute {
  const EventBus* bus = nullptr;
  MpscRing* ring = nullptr;
  std::size_t pub = 0;
};
thread_local PublishRoute t_route;

}  // namespace

std::string_view to_string(StreamEventType t) noexcept {
  switch (t) {
    case StreamEventType::kRuleInstalled:
      return "rule-installed";
    case StreamEventType::kRulesRemoved:
      return "rules-removed";
    case StreamEventType::kRuleEvicted:
      return "rule-evicted";
    case StreamEventType::kRuleModified:
      return "rule-modified";
    case StreamEventType::kSwitchResynced:
      return "switch-resynced";
    case StreamEventType::kTcamOverflow:
      return "tcam-overflow";
    case StreamEventType::kAgentCrashed:
      return "agent-crashed";
    case StreamEventType::kAgentRecovered:
      return "agent-recovered";
    case StreamEventType::kChannelDown:
      return "channel-down";
    case StreamEventType::kChannelUp:
      return "channel-up";
    case StreamEventType::kPolicyPushed:
      return "policy-pushed";
    case StreamEventType::kPolicyChanged:
      return "policy-changed";
    case StreamEventType::kShadowResync:
      return "shadow-resync";
  }
  return "?";
}

EventBus::Cursor EventBus::publish(StreamEvent ev) {
  // Causal provenance: adopt the ambient fault-engine cause unless the
  // publisher stamped one explicitly (explicit stamps win — gray agents
  // interleave benign and misrendered installs in one call). Covers the
  // serial and ring paths alike; ingest_ring copies the field verbatim.
  if (ev.cause.is_null()) ev.cause = current_cause();
  if (t_route.bus == this) {
    // Concurrent path: stamp what a publisher can stamp (wall now, the
    // phase's change-log mark) and hand the event to the ring; seq is
    // assigned at ingest, when the serial phase decides stream order.
    ev.wall = std::chrono::steady_clock::now();
    ev.change_log_mark = t_route.ring->change_log_mark();
    (void)t_route.ring->publish(t_route.pub, ev);
    return 0;
  }
  return publish_serial(std::move(ev));
}

EventBus::Cursor EventBus::publish_serial(StreamEvent ev) {
  SerialGuard g{serial_};
  const Cursor seq = cursor_unlocked();
  ev.seq = seq;
  ev.wall = std::chrono::steady_clock::now();
  ev.change_log_mark = change_log_ != nullptr ? change_log_->size() : 0;
  // Serial publishes are the points where the change log can have moved;
  // keep the mark ring publishers stamp in step so a following concurrent
  // phase needs no extra refresh.
  if (MpscRing* ring = ring_.load(std::memory_order_relaxed)) {
    ring->set_change_log_mark(ev.change_log_mark);
  }
  events_.push_back(std::move(ev));
  ++stats_.published;
  return seq;
}

void EventBus::attach_ring(MpscRing* ring) {
  SerialGuard g{serial_};
  ring_.store(ring, std::memory_order_release);
  if (ring != nullptr && change_log_ != nullptr) {
    ring->set_change_log_mark(change_log_->size());
  }
}

void EventBus::refresh_ring_mark() {
  SerialGuard g{serial_};
  if (MpscRing* ring = ring_.load(std::memory_order_relaxed)) {
    ring->set_change_log_mark(change_log_ != nullptr ? change_log_->size()
                                                     : 0);
  }
}

void EventBus::route_thread(const EventBus* bus, MpscRing* ring,
                            std::size_t pub) noexcept {
  t_route = PublishRoute{bus, ring, pub};
}

EventBus::ConcurrentPublishCapability::ConcurrentPublishCapability(
    EventBus& bus, std::size_t pub)
    : ring_(bus.ring()), pub_(pub) {
  SCOUT_CHECK(ring_ != nullptr,
              "ConcurrentPublishCapability: no ring attached to the bus");
  SCOUT_CHECK(t_route.bus == nullptr,
              "ConcurrentPublishCapability: thread already routed");
  ring_->claim(pub_);
  route_thread(&bus, ring_, pub_);
}

EventBus::ConcurrentPublishCapability::~ConcurrentPublishCapability() {
  route_thread(nullptr, nullptr, 0);
  ring_->release(pub_);
}

std::size_t EventBus::ingest_ring() {
  SerialGuard g{serial_};
  MpscRing* ring = ring_.load(std::memory_order_relaxed);
  if (ring == nullptr) return 0;
  std::size_t n = 0;
  SimTime latest{};
  for (std::size_t p = 0; p < ring->publishers(); ++p) {
    n += ring->drain_shard(p, [&](const StreamEvent& ev) {
      StreamEvent copy = ev;
      copy.seq = cursor_unlocked();
      latest = std::max(latest, copy.time);
      events_.push_back(copy);
      ++stats_.published;
      ++stats_.ingested;
    });
  }
  // Evicted switches degrade to a shadow resync, appended after the
  // surviving events: the checker supersedes a switch's staged deltas with
  // its marker, so a partial (post-gap) suffix is never applied to a
  // pre-gap shadow. Fabric-wide evictions are counted in the ring stats
  // only — policy-layer events are driver-serial in every driver, and the
  // checker reads the compiled epoch from ground truth at drain anyway.
  std::vector<SwitchId> evicted;
  (void)ring->take_evictions(evicted);
  for (const SwitchId sw : evicted) {
    StreamEvent ev;
    ev.type = StreamEventType::kShadowResync;
    ev.sw = sw;
    ev.time = latest;
    ev.wall = std::chrono::steady_clock::now();
    ev.change_log_mark = change_log_ != nullptr ? change_log_->size() : 0;
    ev.seq = cursor_unlocked();
    events_.push_back(ev);
    ++stats_.published;
    ++stats_.resyncs_synthesized;
    ++n;
  }
  return n;
}

EventBus::ReaderId EventBus::register_reader() {
  SerialGuard g{serial_};
  readers_.push_back(cursor_unlocked());
  return readers_.size() - 1;
}

void EventBus::advance_reader(ReaderId id, Cursor c) {
  SerialGuard g{serial_};
  SCOUT_CHECK(id < readers_.size(),
              "EventBus::advance_reader: reader " << id << " of "
                  << readers_.size());
  SCOUT_CHECK(c >= readers_[id],
              "EventBus::advance_reader: cursor moved backwards (" << c
                  << " < " << readers_[id] << ")");
  SCOUT_CHECK(c <= cursor_unlocked(),
              "EventBus::advance_reader: cursor ahead of the stream");
  readers_[id] = c;
}

EventBus::Cursor EventBus::reader_cursor(ReaderId id) const {
  SerialGuard g{serial_};
  SCOUT_CHECK(id < readers_.size(),
              "EventBus::reader_cursor: reader " << id << " of "
                  << readers_.size());
  return readers_[id];
}

EventBus::Cursor EventBus::compaction_floor() const {
  SerialGuard g{serial_};
  Cursor floor = cursor_unlocked();
  for (const Cursor r : readers_) floor = std::min(floor, r);
  return floor;
}

std::span<const StreamEvent> EventBus::events_since(Cursor c) const {
  SerialGuard g{serial_};
  if (c < base_) {
    throw std::out_of_range{
        "EventBus::events_since: cursor below the compaction base"};
  }
  if (c > cursor_unlocked()) {
    // A cursor ahead of the stream is consumer corruption (wrong bus,
    // cursor arithmetic bug); returning empty would silently verify
    // nothing forever.
    throw std::out_of_range{
        "EventBus::events_since: cursor ahead of the stream"};
  }
  return std::span<const StreamEvent>{events_}.subspan(c - base_);
}

void EventBus::compact(Cursor c) {
  SerialGuard g{serial_};
  // The multi-cursor compaction boundary: never reclaim an event any
  // registered reader has yet to consume, whatever the caller asked for.
  for (const Cursor r : readers_) c = std::min(c, r);
  if (c <= base_) return;
  const Cursor limit = cursor_unlocked();
  if (c > limit) c = limit;
  events_.erase(events_.begin(),
                events_.begin() + static_cast<std::ptrdiff_t>(c - base_));
  ++stats_.compactions;
  stats_.compacted_events += c - base_;
  base_ = c;
}

}  // namespace scout::stream
