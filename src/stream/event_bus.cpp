#include "src/stream/event_bus.h"

#include <stdexcept>

#include "src/policy/change_log.h"

namespace scout::stream {

std::string_view to_string(StreamEventType t) noexcept {
  switch (t) {
    case StreamEventType::kRuleInstalled:
      return "rule-installed";
    case StreamEventType::kRulesRemoved:
      return "rules-removed";
    case StreamEventType::kRuleEvicted:
      return "rule-evicted";
    case StreamEventType::kRuleModified:
      return "rule-modified";
    case StreamEventType::kSwitchResynced:
      return "switch-resynced";
    case StreamEventType::kTcamOverflow:
      return "tcam-overflow";
    case StreamEventType::kAgentCrashed:
      return "agent-crashed";
    case StreamEventType::kAgentRecovered:
      return "agent-recovered";
    case StreamEventType::kChannelDown:
      return "channel-down";
    case StreamEventType::kChannelUp:
      return "channel-up";
    case StreamEventType::kPolicyPushed:
      return "policy-pushed";
    case StreamEventType::kPolicyChanged:
      return "policy-changed";
  }
  return "?";
}

EventBus::Cursor EventBus::publish(StreamEvent ev) {
  SerialGuard g{serial_};
  const Cursor seq = cursor_unlocked();
  ev.seq = seq;
  ev.wall = std::chrono::steady_clock::now();
  ev.change_log_mark = change_log_ != nullptr ? change_log_->size() : 0;
  events_.push_back(std::move(ev));
  ++stats_.published;
  return seq;
}

std::span<const StreamEvent> EventBus::events_since(Cursor c) const {
  SerialGuard g{serial_};
  if (c < base_) {
    throw std::out_of_range{
        "EventBus::events_since: cursor below the compaction base"};
  }
  if (c > cursor_unlocked()) {
    // A cursor ahead of the stream is consumer corruption (wrong bus,
    // cursor arithmetic bug); returning empty would silently verify
    // nothing forever.
    throw std::out_of_range{
        "EventBus::events_since: cursor ahead of the stream"};
  }
  return std::span<const StreamEvent>{events_}.subspan(c - base_);
}

void EventBus::compact(Cursor c) {
  SerialGuard g{serial_};
  if (c <= base_) return;
  const Cursor limit = cursor_unlocked();
  if (c > limit) c = limit;
  events_.erase(events_.begin(),
                events_.begin() + static_cast<std::ptrdiff_t>(c - base_));
  ++stats_.compactions;
  stats_.compacted_events += c - base_;
  base_ = c;
}

}  // namespace scout::stream
