#include "src/stream/monitor_loop.h"

#include <chrono>

#include "src/policy/policy_index.h"
#include "src/riskmodel/risk_model.h"

namespace scout::stream {
namespace {

using WallClock = std::chrono::steady_clock;

double millis_between(WallClock::time_point from, WallClock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

MonitorLoop::MonitorLoop(SimNetwork& net, EventBus& bus,
                         runtime::Executor& executor)
    : MonitorLoop(net, bus, executor, Options{}) {}

MonitorLoop::MonitorLoop(SimNetwork& net, EventBus& bus,
                         runtime::Executor& executor, Options options)
    : net_(&net),
      bus_(&bus),
      executor_(&executor),
      options_(options),
      full_system_(ScoutSystem::Options{CheckMode::kExactBdd,
                                        options.localizer}) {
  if (options_.incremental) {
    checker_ = std::make_unique<IncrementalChecker>(
        net, executor.workers(), options_.checker);
  } else {
    full_cache_ = std::make_unique<LogicalBddCache>(executor.workers());
  }
}

MonitorLoop::~MonitorLoop() = default;

void MonitorLoop::prime() {
  cursor_ = bus_->cursor();
  if (options_.compact_bus) bus_->compact(cursor_);
  if (!options_.incremental) return;
  const std::uint64_t epoch = net_->controller().compiled_epoch();
  checker_->stage({});
  executor_->run(checker_->shard_count(),
                 [&](std::size_t shard, std::size_t) {
                   checker_->process_shard(shard, epoch);
                 });
}

MonitorVerdict MonitorLoop::drain() {
  const auto events = bus_->events_since(cursor_);
  MonitorVerdict verdict;
  verdict.first_seq = cursor_;
  verdict.events = events.size();
  cursor_ += events.size();
  verdict.last_seq = cursor_;

  const auto t0 = WallClock::now();
  if (options_.incremental) {
    const std::uint64_t epoch = net_->controller().compiled_epoch();
    checker_->stage(events);
    executor_->run(checker_->shard_count(),
                   [&](std::size_t shard, std::size_t) {
                     checker_->process_shard(shard, epoch);
                   });
    verdict.check = checker_->compose();
  } else {
    verdict.check =
        full_system_.check_all(*net_, *executor_, full_cache_.get());
  }
  const auto t1 = WallClock::now();
  verdict.drain_ms = millis_between(t0, t1);
  // Bounded latency retention for long-lived monitors: past the cap,
  // decimate in place (keep every other sample). Percentiles over the
  // thinned set stay representative; memory stays O(cap).
  constexpr std::size_t kMaxLatencySamples = 1 << 20;
  for (const StreamEvent& ev : events) {
    if (latencies_ms_.size() >= kMaxLatencySamples) {
      for (std::size_t i = 1, j = 0; i < latencies_ms_.size(); i += 2) {
        latencies_ms_[j++] = latencies_ms_[i];
      }
      latencies_ms_.resize(latencies_ms_.size() / 2);
    }
    latencies_ms_.push_back(millis_between(ev.wall, t1));
  }
  ++batches_;
  if (options_.compact_bus) bus_->compact(cursor_);  // span dies here
  return verdict;
}

LocalizationResult MonitorLoop::localize(const FabricCheck& check) const {
  const std::uint64_t epoch = net_->controller().compiled_epoch();
  if (policy_index_ == nullptr || policy_index_epoch_ != epoch) {
    policy_index_ =
        std::make_unique<PolicyIndex>(net_->controller().policy());
    policy_index_epoch_ = epoch;
  }
  RiskModel model = RiskModel::build_controller_model(*policy_index_);
  model.augment(check.missing_rules);
  const ScoutLocalizer localizer{options_.localizer};
  return localizer.localize(model, net_->controller().change_log(),
                            net_->clock().now());
}

IncrementalChecker::Stats MonitorLoop::checker_stats() const {
  return checker_ != nullptr ? checker_->stats()
                             : IncrementalChecker::Stats{};
}

}  // namespace scout::stream
