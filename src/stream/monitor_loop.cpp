#include "src/stream/monitor_loop.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "src/agent/switch_agent.h"
#include "src/common/logging.h"
#include "src/policy/policy_index.h"
#include "src/riskmodel/risk_model.h"
#include "src/stream/incident.h"
#include "src/tcam/tcam_table.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/health.h"

namespace scout::stream {
namespace {

using WallClock = std::chrono::steady_clock;

double millis_between(WallClock::time_point from, WallClock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

MonitorLoop::MonitorLoop(SimNetwork& net, EventBus& bus,
                         runtime::Executor& executor)
    : MonitorLoop(net, bus, executor, Options{}) {}

MonitorLoop::MonitorLoop(SimNetwork& net, EventBus& bus,
                         runtime::Executor& executor, Options options)
    : net_(&net),
      bus_(&bus),
      executor_(&executor),
      options_(options),
      full_system_(ScoutSystem::Options{CheckMode::kExactBdd,
                                        options.localizer}) {
  if (options_.incremental) {
    checker_ = std::make_unique<IncrementalChecker>(
        net, executor.workers(), options_.checker);
    checker_->set_trace(options_.trace);
  } else {
    full_cache_ = std::make_unique<LogicalBddCache>(executor.workers());
  }
  SerialGuard g{serial_};
  // One bus reader per checker shard (one in full-recheck mode): their
  // cursors are the multi-cursor compaction boundary — compact() reclaims
  // nothing a shard's reader has not passed.
  const std::size_t reader_count =
      options_.incremental ? checker_->shard_count() : 1;
  readers_.reserve(reader_count);
  for (std::size_t r = 0; r < reader_count; ++r) {
    readers_.push_back(bus_->register_reader());
  }
  register_metrics();
}

MonitorLoop::~MonitorLoop() {
  // register_metrics() handed the executor handles that point into the
  // caller-owned registry; detach them so the executor cannot record into
  // a registry that dies before it does.
  if (options_.metrics != nullptr) {
    executor_->set_metrics(runtime::ExecutorMetrics{});
  }
}

void MonitorLoop::register_metrics() {
  telemetry::MetricsRegistry* reg = options_.metrics;
  if (reg == nullptr) return;
  batches_counter_ = reg->counter("stream.batches");
  events_counter_ = reg->counter("stream.events_drained");
  wall_latency_ms_ = reg->histogram("stream.wall_latency_ms");
  sim_latency_ms_ = reg->histogram("stream.sim_latency_ms");
  drain_ms_ = reg->histogram("stream.drain_ms");
  batch_events_ = reg->histogram("stream.batch_events");
  bus_backlog_ = reg->gauge("stream.bus_backlog");
  bus_cursor_lag_ = reg->gauge("stream.bus_cursor_lag");
  bus_published_ = reg->counter("stream.bus_published");
  bus_compactions_ = reg->counter("stream.bus_compactions");
  bus_compacted_events_ = reg->counter("stream.bus_compacted_events");
  if (checker_ != nullptr) {
    initial_builds_ = reg->counter("stream.initial_builds");
    events_applied_ = reg->counter("stream.events_applied");
    incremental_updates_ = reg->counter("stream.incremental_updates");
    full_rebuilds_ = reg->counter("stream.full_rebuilds");
    epoch_rebuilds_ = reg->counter("stream.epoch_rebuilds");
    threshold_trips_ = reg->counter("stream.threshold_trips");
    unsafe_rebuilds_ = reg->counter("stream.unsafe_rebuilds");
    overflow_resyncs_ = reg->counter("stream.overflow_resyncs");
    diff_recomputes_ = reg->counter("stream.diff_recomputes");
    verdicts_reused_ = reg->counter("stream.verdicts_reused");
    arena_peak_nodes_ = reg->gauge("bdd.arena_peak_nodes");
    // Per-switch churn series register lazily, top-K per bridge
    // (update_churn_gauges) — an upfront gauge per switch would make the
    // exporter's cardinality linear in fabric size.
    churn_other_gauge_ = reg->gauge("stream.churn.other");
  } else {
    resident_switches_ = reg->gauge("bdd.resident_switches");
  }
  // Concurrent-publish instrumentation — only when the driver attached a
  // ring before constructing the monitor (serial-only runs skip the
  // metric names entirely).
  if (const MpscRing* ring = bus_->ring()) {
    bus_ingested_ = reg->counter("stream.bus_ingested");
    bus_resyncs_synthesized_ = reg->counter("stream.bus_resyncs_synthesized");
    ring_published_ = reg->counter("stream.ring_published");
    ring_drained_ = reg->counter("stream.ring_drained");
    ring_evictions_ = reg->counter("stream.ring_evictions");
    ring_full_stalls_ = reg->counter("stream.ring_full_stalls");
    ring_occupancy_ = reg->gauge("stream.ring_occupancy");
    ring_high_water_ = reg->gauge("stream.ring_high_water");
    ring_lag_gauges_.reserve(ring->publishers());
    for (std::size_t p = 0; p < ring->publishers(); ++p) {
      ring_lag_gauges_.push_back(
          reg->gauge("stream.ring.lag.pub" + std::to_string(p)));
    }
  }
  // Fault-engine activity. The eviction counter names are read off the
  // agents at construction time (policies are installed before the
  // monitor), one series per distinct policy in use.
  gray_misrenders_counter_ = reg->counter("faults.gray.misrenders");
  gray_drops_counter_ = reg->counter("faults.gray.drops");
  const auto agents = net_->agents();
  eviction_counters_.reserve(agents.size());
  bridged_evictions_.assign(agents.size(), 0);
  for (const auto& agent : agents) {
    eviction_counters_.push_back(reg->counter(
        "tcam.evictions." +
        std::string(agent->tcam().eviction_policy_name())));
  }
  arena_nodes_ = reg->gauge("bdd.arena_nodes");
  arena_rollbacks_ = reg->gauge("bdd.arena_rollbacks");
  unique_load_ = reg->gauge("bdd.unique_load");
  cache_hit_rate_ = reg->gauge("bdd.cache_hit_rate");
  // Executor queue-wait / task-runtime distributions (wall diagnostics).
  // The registry pointer makes every Executor::run a parallel region on
  // this registry, so an in-flight snapshot()/reset() aborts instead of
  // tearing the shard merge (metrics.h, "quiescence gate").
  runtime::ExecutorMetrics exec_metrics;
  exec_metrics.queue_wait_us = reg->histogram("runtime.queue_wait_us");
  exec_metrics.task_run_us = reg->histogram("runtime.task_run_us");
  exec_metrics.tasks = reg->counter("runtime.tasks");
  exec_metrics.registry = reg;
  executor_->set_metrics(std::move(exec_metrics));
}

void MonitorLoop::bridge_counters() {
  if (options_.metrics == nullptr) return;

  // Bus lifetime counters (cumulative -> delta-fold).
  const EventBus::Stats bus = bus_->stats();
  bus_published_.add(bus.published - bridged_bus_.published);
  bus_compactions_.add(bus.compactions - bridged_bus_.compactions);
  bus_compacted_events_.add(bus.compacted_events -
                            bridged_bus_.compacted_events);
  bus_ingested_.add(bus.ingested - bridged_bus_.ingested);
  bus_resyncs_synthesized_.add(bus.resyncs_synthesized -
                               bridged_bus_.resyncs_synthesized);
  bridged_bus_ = bus;
  bus_backlog_.set(static_cast<double>(bus_->retained()));
  bus_cursor_lag_.set(static_cast<double>(bus_->cursor() - cursor_));

  if (const MpscRing* ring = bus_->ring()) {
    const MpscRing::Stats rs = ring->stats();
    ring_published_.add(rs.published - bridged_ring_.published);
    ring_drained_.add(rs.drained - bridged_ring_.drained);
    ring_evictions_.add(rs.evictions - bridged_ring_.evictions);
    ring_full_stalls_.add(rs.full_stalls - bridged_ring_.full_stalls);
    bridged_ring_ = rs;
    ring_occupancy_.set(static_cast<double>(ring->occupancy()));
    ring_high_water_.set(static_cast<double>(ring->high_water()));
    // Per-publisher cursor lag: how far each shard's published cursor has
    // run ahead of its drained cursor (live backlog attributable to that
    // publisher thread).
    for (std::size_t p = 0; p < ring_lag_gauges_.size(); ++p) {
      ring_lag_gauges_[p].set(static_cast<double>(ring->published_cursor(p) -
                                                  ring->drained_cursor(p)));
    }
  }

  // Fault-engine lifetime counters, delta-folded like the other
  // cumulative sources. Gray counters only move in the serial control
  // phase (controller pushes); the eviction counter is relaxed-atomic so
  // reading it here is safe even while pinned publishers are evicting.
  {
    std::uint64_t misrenders = 0;
    std::uint64_t drops = 0;
    const auto agents = net_->agents();
    for (std::size_t i = 0; i < agents.size(); ++i) {
      misrenders += agents[i]->gray_misrenders();
      drops += agents[i]->gray_drops();
      if (i < eviction_counters_.size()) {
        const std::uint64_t ev = agents[i]->tcam().evictions();
        eviction_counters_[i].add(ev - bridged_evictions_[i]);
        bridged_evictions_[i] = ev;
      }
    }
    gray_misrenders_counter_.add(misrenders - bridged_gray_misrenders_);
    gray_drops_counter_.add(drops - bridged_gray_drops_);
    bridged_gray_misrenders_ = misrenders;
    bridged_gray_drops_ = drops;
  }

  if (checker_ != nullptr) {
    const IncrementalChecker::Stats s = checker_->stats();
    const auto fold = [](telemetry::Counter& counter, std::size_t now,
                         std::size_t last) {
      counter.add(static_cast<std::uint64_t>(now - last));
    };
    fold(initial_builds_, s.initial_builds, bridged_checker_.initial_builds);
    fold(events_applied_, s.events_applied, bridged_checker_.events_applied);
    fold(incremental_updates_, s.incremental_updates,
         bridged_checker_.incremental_updates);
    fold(full_rebuilds_, s.full_rebuilds, bridged_checker_.full_rebuilds);
    fold(epoch_rebuilds_, s.epoch_rebuilds, bridged_checker_.epoch_rebuilds);
    fold(threshold_trips_, s.threshold_trips,
         bridged_checker_.threshold_trips);
    fold(unsafe_rebuilds_, s.unsafe_rebuilds,
         bridged_checker_.unsafe_rebuilds);
    fold(overflow_resyncs_, s.overflow_resyncs,
         bridged_checker_.overflow_resyncs);
    fold(diff_recomputes_, s.diff_recomputes,
         bridged_checker_.diff_recomputes);
    fold(verdicts_reused_, s.verdicts_reused,
         bridged_checker_.verdicts_reused);
    bridged_checker_ = s;

    // Resident arena sizes across the per-switch managers. Node/rollback
    // totals are deterministic in incremental mode (one arena per switch,
    // driven only by the event stream).
    const BddManager::Stats arena = checker_->arena_totals();
    arena_nodes_.set(static_cast<double>(arena.nodes));
    arena_peak_nodes_.set(static_cast<double>(arena.peak_nodes));
    arena_rollbacks_.set(static_cast<double>(arena.rollbacks));
    unique_load_.set(arena.unique_load);
    cache_hit_rate_.set(arena.cache_lookups == 0
                            ? 0.0
                            : static_cast<double>(arena.cache_hits) /
                                  static_cast<double>(arena.cache_lookups));

    // Live per-switch churn: the signal a churn-tiered monitor would
    // classify switches on (see ROADMAP).
    update_churn_gauges();
  } else if (full_cache_ != nullptr) {
    const LogicalBddCache::Stats s = full_cache_->stats();
    arena_nodes_.set(static_cast<double>(s.nodes));
    unique_load_.set(s.unique_load);
    cache_hit_rate_.set(s.cache_hit_rate);
    arena_rollbacks_.set(static_cast<double>(s.rollbacks));
    resident_switches_.set(static_cast<double>(s.resident_switches));
  }

  // The health engine reads lifetime-cumulative totals — the bridged_*
  // copies were just refreshed above, so this observes the same instant
  // the registry does.
  if (options_.health != nullptr) {
    telemetry::HealthEngine::Sample hs;
    hs.events = events_total_;
    hs.events_over_budget = events_over_budget_;
    hs.batches = batches_;
    hs.full_rebuilds = bridged_checker_.full_rebuilds;
    hs.ring_published = bridged_ring_.published;
    hs.ring_evictions = bridged_ring_.evictions;
    hs.ring_full_stalls = bridged_ring_.full_stalls;
    options_.health->observe(hs);
  }
}

void MonitorLoop::update_churn_gauges() {
  const auto churn = checker_->churn_by_switch();
  const std::size_t k = std::min(options_.churn_top_k, churn.size());
  // Deterministic top-K: highest churn first, ties broken by switch id.
  std::vector<std::size_t> order(churn.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (churn[a].second != churn[b].second) {
                        return churn[a].second > churn[b].second;
                      }
                      return churn[a].first.value() < churn[b].first.value();
                    });
  double other = 0;
  for (std::size_t i = k; i < order.size(); ++i) {
    other += static_cast<double>(churn[order[i]].second);
  }
  // Zero every registered series first so a switch that dropped out of
  // the top set reads 0 instead of its stale last value.
  for (auto& [sw, gauge] : churn_gauges_by_sw_) gauge.set(0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const auto& [sw, value] = churn[order[i]];
    auto it = churn_gauges_by_sw_.find(sw.value());
    if (it == churn_gauges_by_sw_.end()) {
      it = churn_gauges_by_sw_
               .emplace(sw.value(),
                        options_.metrics->gauge(
                            "stream.churn.sw" + std::to_string(sw.value())))
               .first;
    }
    it->second.set(static_cast<double>(value));
  }
  churn_other_gauge_.set(other);
}

std::size_t MonitorLoop::ingest_ring_events() {
  if (bus_->ring() == nullptr) return 0;
  return bus_->ingest_ring();
}

std::size_t MonitorLoop::ingest_ring() {
  SerialGuard g{serial_};
  return ingest_ring_events();
}

void MonitorLoop::prime() {
  SerialGuard g{serial_};
  telemetry::TraceRecorder::Scope span{options_.trace, 0, "prime", "stream",
                                       net_->clock().now()};
  ingest_ring_events();
  cursor_ = bus_->cursor();
  for (const EventBus::ReaderId r : readers_) {
    bus_->advance_reader(r, cursor_);
  }
  if (options_.compact_bus) bus_->compact(cursor_);
  if (!options_.incremental) return;
  const std::uint64_t epoch = net_->controller().compiled_epoch();
  checker_->stage({});
  executor_->run(checker_->shard_count(),
                 [&](std::size_t shard, std::size_t) {
                   checker_->process_shard(shard, epoch);
                 });
  span.set_sim_end(net_->clock().now());
  SCOUT_INFO("stream", "primed: " << checker_->switch_count()
                                  << " switches over "
                                  << checker_->shard_count() << " shards");
}

MonitorVerdict MonitorLoop::drain() {
  SerialGuard g{serial_};
  ingest_ring_events();
  const auto events = bus_->events_since(cursor_);
  MonitorVerdict verdict;
  verdict.first_seq = cursor_;
  verdict.events = events.size();
  cursor_ += events.size();
  verdict.last_seq = cursor_;

  const SimTime sim_start = net_->clock().now();
  const auto batch_index = static_cast<std::int64_t>(batches_);
  telemetry::TraceRecorder::Scope drain_span{
      options_.trace, 0, "drain", "stream", sim_start, batch_index};

  const auto t0 = WallClock::now();
  if (options_.incremental) {
    const std::uint64_t epoch = net_->controller().compiled_epoch();
    checker_->stage(events);
    executor_->run(checker_->shard_count(),
                   [&](std::size_t shard, std::size_t worker) {
                     telemetry::TraceRecorder::Scope shard_span{
                         options_.trace, worker + 1, "shard", "stream",
                         sim_start, batch_index};
                     checker_->process_shard(shard, epoch);
                   });
    verdict.check = checker_->compose();
  } else {
    telemetry::TraceRecorder::Scope check_span{
        options_.trace, 0, "full_check", "stream", sim_start, batch_index};
    verdict.check =
        full_system_.check_all(*net_, *executor_, full_cache_.get());
  }
  const auto t1 = WallClock::now();
  verdict.drain_ms = millis_between(t0, t1);

  // Event-to-detection latency in both clocks, explicitly: wall is the
  // steady_clock publish stamp to the verdict instant; sim is the event's
  // SimTime stamp to the network clock now. The two are never mixed.
  const SimTime sim_now = net_->clock().now();
  const double budget_ms = options_.health != nullptr
                               ? options_.health->options().detect_budget_ms
                               : 0.0;
  for (const StreamEvent& ev : events) {
    const double wall_ms = millis_between(ev.wall, t1);
    wall_latency_ms_.record(0, wall_ms);
    sim_latency_ms_.record(0, static_cast<double>(sim_now - ev.time));
    if (budget_ms > 0 && wall_ms > budget_ms) ++events_over_budget_;
  }
  events_total_ += events.size();
  drain_ms_.record(0, verdict.drain_ms);
  batch_events_.record(0, static_cast<double>(events.size()));
  events_counter_.add(static_cast<std::uint64_t>(events.size()));
  batches_counter_.add(1);

  // Observability layers — all strictly after the verdict is composed, so
  // none of them can perturb it (digest bit-identity with these on vs off
  // is pinned by tests/test_incidents.cpp).
  const bool failing = !verdict.check.inconsistent.empty();
  if (options_.incidents != nullptr) {
    observe_incident(verdict, events, sim_now);
  }
  if (options_.flight != nullptr) {
    record_flight(verdict, events, sim_now, failing);
  }
  last_verdict_failing_ = failing;

  ++batches_;
  // Workers have joined: every shard's reader may pass the batch. Without
  // this advance the readers pin compact() at the pre-batch cursor.
  for (const EventBus::ReaderId r : readers_) {
    bus_->advance_reader(r, cursor_);
  }
  if (options_.compact_bus) bus_->compact(cursor_);  // span dies here
  bridge_counters();
  drain_span.set_sim_end(sim_now);

  if (options_.snapshot_every_batches > 0 && options_.metrics != nullptr &&
      batches_ % options_.snapshot_every_batches == 0) {
    periodic_snapshots_.push_back(options_.metrics->snapshot());
    if (options_.trace != nullptr) {
      options_.trace->instant(0, "metrics_snapshot", "telemetry", sim_now);
    }
  }
  return verdict;
}

void MonitorLoop::observe_incident(const MonitorVerdict& verdict,
                                   std::span<const StreamEvent> events,
                                   SimTime sim_now) {
  IncidentBuilder* incidents = options_.incidents;
  incidents->observe_events(events);
  const bool opened =
      incidents->observe_verdict(verdict.check, batches_, sim_now);
  if (opened) {
    incidents->attach_suspects(localize_impl(verdict.check));
    if (options_.trace != nullptr) {
      options_.trace->instant(0, "incident_open", "stream", sim_now);
    }
  }
}

void MonitorLoop::record_flight(const MonitorVerdict& verdict,
                                std::span<const StreamEvent> events,
                                SimTime sim_now, bool failing) {
  telemetry::FlightRecorder* flight = options_.flight;
  for (const StreamEvent& ev : events) {
    if (ev.cause.is_null()) continue;
    telemetry::FlightRecorder::Entry e;
    e.kind = telemetry::FlightRecorder::EntryKind::kEvent;
    telemetry::FlightRecorder::set_name(
        e, std::string(to_string(ev.type)).c_str());
    e.sim_ms = ev.time.millis();
    e.batch = batches_;
    e.seq = ev.seq;
    e.sw = static_cast<std::int64_t>(ev.sw.value());
    e.cause = ev.cause.raw();
    flight->record(0, e);
  }
  telemetry::FlightRecorder::Entry v;
  v.kind = telemetry::FlightRecorder::EntryKind::kVerdict;
  telemetry::FlightRecorder::set_name(v, failing ? "verdict_fail"
                                                 : "verdict_clean");
  v.dur_ms = verdict.drain_ms;
  v.sim_ms = sim_now.millis();
  v.batch = batches_;
  v.seq = verdict.last_seq;
  v.value = static_cast<double>(verdict.check.inconsistent.size());
  flight->record(0, v);
  if (failing && !last_verdict_failing_ &&
      !options_.flight_dump_path.empty()) {
    // First failing verdict after a clean run: dump the window leading up
    // to it while the context is still in the rings.
    flight->dump_to_file(options_.flight_dump_path.c_str());
  }
}

LocalizationResult MonitorLoop::localize(const FabricCheck& check) const {
  SerialGuard g{serial_};
  return localize_impl(check);
}

LocalizationResult MonitorLoop::localize_impl(const FabricCheck& check) const {
  telemetry::TraceRecorder::Scope span{options_.trace, 0, "localize",
                                       "stream", net_->clock().now()};
  const std::uint64_t epoch = net_->controller().compiled_epoch();
  if (policy_index_ == nullptr || policy_index_epoch_ != epoch) {
    policy_index_ =
        std::make_unique<PolicyIndex>(net_->controller().policy());
    policy_index_epoch_ = epoch;
  }
  RiskModel model = RiskModel::build_controller_model(*policy_index_);
  model.augment(check.missing_rules);
  const ScoutLocalizer localizer{options_.localizer};
  return localizer.localize(model, net_->controller().change_log(),
                            net_->clock().now());
}

std::size_t MonitorLoop::remediate(const FabricCheck& check) {
  SerialGuard g{serial_};
  telemetry::TraceRecorder::Scope span{options_.trace, 0, "remediate",
                                       "stream", net_->clock().now()};
  ScoutReport report;
  report.switches_checked = check.switches_checked;
  report.switches_inconsistent = check.inconsistent.size();
  report.missing_rules = check.missing_rules;
  report.extra_rule_count = check.extra_rule_count;
  const std::size_t still_missing =
      full_system_.remediate(*net_, report, *executor_);
  span.set_sim_end(net_->clock().now());
  if (options_.metrics != nullptr) {
    options_.metrics->add_counter("stream.remediations", 1);
    options_.metrics->add_counter(
        "stream.rules_reinstalled",
        static_cast<std::uint64_t>(check.missing_rules.size()));
    options_.metrics->add_counter(
        "stream.rules_still_missing",
        static_cast<std::uint64_t>(still_missing));
  }
  if (still_missing != 0) {
    SCOUT_WARN("stream", "remediation left " << still_missing
                                             << " rules missing (physical "
                                                "fault persists)");
  }
  return still_missing;
}

IncrementalChecker::Stats MonitorLoop::checker_stats() const {
  return checker_ != nullptr ? checker_->stats()
                             : IncrementalChecker::Stats{};
}

telemetry::MetricsSnapshot MonitorLoop::snapshot_metrics() {
  SerialGuard g{serial_};
  if (options_.metrics == nullptr) return telemetry::MetricsSnapshot{};
  bridge_counters();
  return options_.metrics->snapshot();
}

}  // namespace scout::stream
