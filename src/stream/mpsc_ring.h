// Bounded lock-free MPSC event ring: the concurrent-publish transport
// between SwitchAgent/Controller publisher threads and the (single)
// monitor drainer.
//
// Layout: one SPSC shard per publisher. Each shard is a power-of-two slot
// array with a producer-owned tail and a consumer-owned head, both
// monotone 64-bit cursors on separate cache lines (the classic Lamport
// ring, release/acquire pairs only — no CAS on the hot path). The whole
// structure is MPSC because each publisher owns exactly one shard and a
// single drainer pops all of them; per-publisher FIFO order is therefore
// structural, and cross-publisher order is decided once, at ingest, by the
// serial phase (EventBus::ingest_ring walks shards in index order).
//
// Cursor contract: published_cursor(p) and drained_cursor(p) never
// decrease; their difference is the shard's live occupancy. These are the
// "sharded cursors" that replace the bus's single serial cursor on the
// publish side — the bus cursor only advances at ingest, when the serial
// phase assigns dense sequence numbers.
//
// Backpressure: capacity is a hard bound, so a misbehaving publisher can
// not OOM the monitor. On a full shard the policy decides:
//  * kEvictToResync (default) — the event is dropped and its switch is
//    marked in the evicted-switch set; at the next ingest the bus
//    synthesizes a kShadowResync event, degrading that switch from
//    exact delta-tracking to a ground-truth re-collect. Verdicts stay
//    exact — only the incremental path's economy is lost.
//  * kBackpressure — the publisher spin-yields until the drainer frees a
//    slot. close() (or destruction) unblocks spinners by flipping every
//    blocked or subsequent publish to the eviction path, so shutdown can
//    never deadlock behind a stopped drainer.
//
// Thread roles, enforced in debug builds: at most one live publisher
// registration per shard at a time (claim/release, used by
// EventBus::ConcurrentPublishCapability) and one drainer. Destruction
// close()es the ring and waits for every claimed shard to be released, so
// tearing the ring down under in-flight publishers is safe by
// construction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/common/check.h"
#include "src/stream/event.h"

namespace scout::stream {

// Ring slots are copied by value across threads; the event must stay a
// trivially copyable POD for that to be a plain (data-race-free) store.
static_assert(std::is_trivially_copyable_v<StreamEvent>,
              "StreamEvent must stay trivially copyable: MpscRing slots are "
              "copied across threads");

class MpscRing {
 public:
  enum class FullPolicy : std::uint8_t {
    kEvictToResync,  // drop + degrade the switch to a shadow resync
    kBackpressure,   // spin until the drainer frees a slot (close() escapes)
  };

  struct Options {
    std::size_t shard_capacity = 4096;  // rounded up to a power of two
    FullPolicy on_full = FullPolicy::kEvictToResync;
  };

  // Lifetime totals, summed over shards. `full_stalls` counts full-shard
  // encounters (one per publish call that found no space, however long it
  // then spun) — the publish-contention signal telemetry exposes.
  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t drained = 0;
    std::uint64_t evictions = 0;
    std::uint64_t full_stalls = 0;
  };

  // `switch_id_bound` sizes the evicted-switch set: one slot per SwitchId
  // value below the bound. Evicted events whose switch id is invalid or
  // out of bounds (fabric-wide events should never ride the ring) set a
  // sticky fabric-wide flag instead.
  MpscRing(std::size_t publishers, std::size_t switch_id_bound);
  MpscRing(std::size_t publishers, std::size_t switch_id_bound,
           Options options);
  ~MpscRing();
  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  [[nodiscard]] std::size_t publishers() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_capacity() const noexcept {
    return mask_ + 1;
  }

  // -- Producer side (thread owning shard `pub` only) ------------------------

  // Exclusivity registration: at most one live claim per shard. claim()
  // aborts on a double registration; release() ends it. EventBus's
  // ConcurrentPublishCapability is the RAII wrapper.
  void claim(std::size_t pub);
  void release(std::size_t pub) noexcept;

  // Append one event to shard `pub`. Returns false when the event was
  // degraded to an eviction (full shard under kEvictToResync, or the ring
  // is closed).
  bool publish(std::size_t pub, const StreamEvent& ev);

  // Unblock kBackpressure spinners and flip every later publish to the
  // eviction path. Sticky; used for shutdown and by the destructor.
  void close() noexcept { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  // -- Consumer side (single drainer) ----------------------------------------

  // Pop everything currently published in shard `pub`, oldest first, into
  // sink(const StreamEvent&). The head cursor is released per element, so
  // a blocked publisher regains space mid-drain. Returns events delivered.
  template <typename Sink>
  std::size_t drain_shard(std::size_t pub, Sink&& sink) {
    Shard& s = shard(pub);
    const std::uint64_t tail = s.tail.load(std::memory_order_acquire);
    std::uint64_t head = s.head.load(std::memory_order_relaxed);
    const std::size_t n = static_cast<std::size_t>(tail - head);
    for (; head != tail; ++head) {
      sink(s.slots[head & mask_]);
      // Publish the freed slot only after the sink is done reading it.
      s.head.store(head + 1, std::memory_order_release);
    }
    s.drained.fetch_add(n, std::memory_order_relaxed);
    return n;
  }

  // Move the evicted-switch set into `out` (ascending id order, cleared as
  // read). Returns true when a fabric-wide (invalid / out-of-bounds id)
  // event was evicted since the last take.
  bool take_evictions(std::vector<SwitchId>& out);

  // Change-log mark publishers stamp into ring events. The serial phase
  // refreshes it before a concurrent phase begins (log writes are
  // serial-phase by contract, so the value is stable while publishers
  // run); see EventBus::refresh_ring_mark.
  void set_change_log_mark(std::size_t mark) noexcept {
    change_log_mark_.store(mark, std::memory_order_release);
  }
  [[nodiscard]] std::size_t change_log_mark() const noexcept {
    return change_log_mark_.load(std::memory_order_acquire);
  }

  // -- Cursors and gauges (racy reads are monotone snapshots) ----------------

  [[nodiscard]] std::uint64_t published_cursor(std::size_t pub) const {
    return shard(pub).tail.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t drained_cursor(std::size_t pub) const {
    return shard(pub).head.load(std::memory_order_acquire);
  }
  // Live events across all shards (snapshot; exact at quiescence).
  [[nodiscard]] std::size_t occupancy() const;
  // Peak single-shard occupancy ever observed by a publisher.
  [[nodiscard]] std::uint64_t high_water() const;
  [[nodiscard]] Stats stats() const;

 private:
  // Padded so one publisher's cursor traffic never false-shares with its
  // neighbours or with the drainer's head writes.
  struct alignas(64) Shard {
    std::vector<StreamEvent> slots;
    alignas(64) std::atomic<std::uint64_t> tail{0};  // producer-owned
    alignas(64) std::atomic<std::uint64_t> head{0};  // consumer-owned
    alignas(64) std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> full_stalls{0};
    std::atomic<std::uint64_t> high_water{0};
    std::atomic<bool> claimed{false};
    std::atomic<std::uint64_t> drained{0};  // lifetime total (relaxed)
  };

  [[nodiscard]] Shard& shard(std::size_t pub) {
    SCOUT_CHECK(pub < shards_.size(),
                "MpscRing: publisher " << pub << " of " << shards_.size());
    return *shards_[pub];
  }
  [[nodiscard]] const Shard& shard(std::size_t pub) const {
    return const_cast<MpscRing*>(this)->shard(pub);
  }

  void mark_eviction(Shard& s, SwitchId sw);

  std::uint64_t mask_ = 0;
  Options options_;
  std::atomic<std::size_t> change_log_mark_{0};
  std::atomic<bool> closed_{false};
  std::atomic<std::size_t> live_publishers_{0};
  std::atomic<bool> fabric_wide_eviction_{false};
  std::vector<std::unique_ptr<Shard>> shards_;
  // Indexed by SwitchId value; exchange-cleared by take_evictions().
  std::vector<std::atomic<std::uint8_t>> evicted_;
};

}  // namespace scout::stream
