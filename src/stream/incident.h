// Incident provenance: correlates failing verdicts with the cause stamps
// on the events that preceded them, producing one Incident record per
// contiguous run of failing verdicts — when it opened, how long detection
// took, which switches it violated, the causal chain of fault-engine
// episodes behind it, and the localizer's suspect objects at detection.
//
// Window model. The builder buffers a summary of every *cause-bearing*
// event the monitor drains (benign churn is null-cause and skipped). A
// clean verdict resets the window: the buffer clears and the ground-truth
// ledger position is marked. A failing verdict after a clean one opens an
// incident; consecutive failing verdicts extend it (their violated
// switches union in); the next clean verdict closes it. Because the
// drivers pump (mint + publish + ledger-record) strictly before each
// drain, the event window and the ledger window [mark, size) delimit the
// same slice of fabric history — so attribution and truth are compared
// over identical intervals.
//
// Scoring. At close, A = the distinct causes among windowed events on
// violated switches (seq order; A[0] is the *first cause*), and T = the
// distinct causes among ledger entries in the window that touched a
// violated switch. Every engine records truth exactly when it mutates
// state and stamps the events of that same mutation, so A ⊆ T by
// construction — precision 1.0 is the designed invariant
// (bench/incident_accuracy gates it); recall < 1 happens only when a
// mutation's events never reached the serial log (gray drops, ring
// evictions) or fell out of a truncated window.
//
// The builder is observe-only: it never touches the checker or the bus,
// and verdict digests are computed before it runs — attaching it cannot
// perturb a digest (tests pin bit-identity with incidents on vs off).
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/localization/localizer.h"
#include "src/scout/scout_system.h"
#include "src/stream/cause.h"
#include "src/stream/event.h"
#include "src/telemetry/metrics.h"

namespace scout {
class JsonWriter;
}  // namespace scout

namespace scout::stream {

// One distinct cause observed inside an incident's window.
struct IncidentCause {
  CauseId cause{};
  std::uint64_t first_seq = 0;  // earliest windowed event carrying it
  SwitchId first_sw{};
  SimTime first_time{};
  std::size_t events = 0;  // windowed events carrying it (violated switches)
  bool in_truth = false;   // cause appears in the ledger window
};

struct Incident {
  std::size_t id = 0;
  bool open = true;
  std::uint64_t opened_batch = 0;
  std::uint64_t closed_batch = 0;
  SimTime detected_at{};  // sim clock at the opening verdict
  // First-cause publish → opening verdict. Negative when the incident
  // had no attributable cause at open (e.g. pure gray-drop damage).
  double detect_wall_ms = -1;
  std::int64_t detect_sim_ms = -1;
  std::vector<SwitchId> violated;     // sorted union over the lifetime
  std::vector<IncidentCause> causes;  // A, seq order; [0] = first cause
  std::vector<ObjectRef> suspects;    // localizer hypothesis at open
  std::size_t suspects_unexplained = 0;
  std::size_t truth_causes = 0;    // |T|
  std::size_t matched_causes = 0;  // |A ∩ T|
  bool first_cause_correct = false;

  [[nodiscard]] bool attributed() const noexcept { return !causes.empty(); }
};

class IncidentBuilder {
 public:
  struct Options {
    // Cause-bearing event summaries buffered per window. On overflow the
    // oldest entries are kept (the first cause is the one that matters)
    // and the drop is counted in incident.window.dropped.
    std::size_t max_window_events = 16384;
    // Retained incident records; older ones are still counted in totals.
    std::size_t max_incidents = 4096;
  };

  explicit IncidentBuilder(const CauseLedger* ledger,
                           telemetry::MetricsRegistry* registry = nullptr);
  IncidentBuilder(const CauseLedger* ledger,
                  telemetry::MetricsRegistry* registry, Options options);

  // Driver-thread only, once per drain, before observe_verdict: buffer
  // the batch's cause-bearing events.
  void observe_events(std::span<const StreamEvent> events);

  // Driver-thread only, once per drain, after the verdict is composed.
  // Returns true when this verdict opened a new incident — callers run
  // localization then and hand the result to attach_suspects().
  bool observe_verdict(const FabricCheck& check, std::uint64_t batch,
                       SimTime sim_now);

  // Attach the localizer's hypothesis to the just-opened incident.
  void attach_suspects(const LocalizationResult& result);

  // Close any still-open incident (end of run).
  void finalize(std::uint64_t batch, SimTime sim_now);

  struct Totals {
    std::size_t incidents = 0;
    std::size_t attributed_causes = 0;  // Σ|A|
    std::size_t truth_causes = 0;       // Σ|T|
    std::size_t matched_causes = 0;     // Σ|A ∩ T|
    std::size_t first_cause_correct = 0;
    std::size_t unattributed_incidents = 0;
    std::size_t window_dropped = 0;

    [[nodiscard]] double precision() const noexcept {
      return attributed_causes == 0
                 ? 1.0
                 : static_cast<double>(matched_causes) /
                       static_cast<double>(attributed_causes);
    }
    [[nodiscard]] double recall() const noexcept {
      return truth_causes == 0 ? 1.0
                               : static_cast<double>(matched_causes) /
                                     static_cast<double>(truth_causes);
    }
  };

  [[nodiscard]] const std::vector<Incident>& incidents() const noexcept {
    return incidents_;
  }
  [[nodiscard]] const Totals& totals() const noexcept { return totals_; }
  [[nodiscard]] bool incident_open() const noexcept { return open_; }

  void write_json(JsonWriter& w) const;
  [[nodiscard]] std::string to_json() const;
  bool write_file(const std::string& path) const;

 private:
  struct EventSummary {
    std::uint64_t seq = 0;
    SwitchId sw{};
    CauseId cause{};
    SimTime time{};
    std::chrono::steady_clock::time_point wall{};
  };

  void open_incident(const FabricCheck& check, std::uint64_t batch,
                     SimTime sim_now);
  void close_incident(std::uint64_t batch);
  void reset_window();
  [[nodiscard]] bool is_violated(SwitchId sw) const noexcept;

  const CauseLedger* ledger_;
  Options options_;
  std::vector<EventSummary> window_;  // since the last clean verdict
  std::size_t ledger_mark_ = 0;       // ledger size at the last clean verdict
  std::vector<Incident> incidents_;   // closed records, ≤ max_incidents
  Incident current_;                  // the open incident, valid iff open_
  std::size_t next_id_ = 0;
  bool open_ = false;
  Totals totals_;

  telemetry::Counter opened_counter_, closed_counter_, unattributed_counter_,
      window_dropped_counter_;
  telemetry::Gauge open_gauge_, precision_gauge_, recall_gauge_,
      detect_wall_gauge_;
};

}  // namespace scout::stream
