// MonitorLoop: drains event batches off the bus, fans the per-switch
// incremental work over the runtime executor with stable switch affinity,
// and emits fabric verdicts with event-to-detection latency stamps.
//
// Two modes, one verdict type:
//  * incremental (default) — stage the batch's TCAM deltas onto the
//    per-switch shards, process each shard on one worker, compose the
//    fabric verdict from the per-switch cached results;
//  * full recheck — the PR 4 baseline: every drain runs the sharded
//    ScoutSystem::check_all over a resident-L LogicalBddCache.
// Verdict streams are bit-identical between the modes (and across worker
// counts); bench/stream_latency.cpp enforces that while measuring the
// throughput gap.
//
// Concurrent publish: when the bus has an MpscRing attached, prime() and
// drain() first ingest_ring() — folding everything publisher threads
// appended since the last drain into the serial log (and synthesizing
// shadow-resync events for any overflow-evicted switches). The monitor
// also registers one bus reader per checker shard; compact() reclaims
// nothing any shard's reader has not passed, so sharded cursor lag can
// never unmap an event a worker might still read.
//
// Telemetry: when Options carries a MetricsRegistry the loop records
// event-to-detection latency in *both* clocks — wall (publish steady_clock
// stamp -> verdict wall time) and sim (event SimTime -> network clock at
// the verdict) — plus drain/batch histograms, and bridges the checker,
// bus and arena counters into "stream." / "bdd." metrics at each drain.
// A TraceRecorder adds prime/drain/shard/localize/remediate spans (lane 0
// = driver, lane w+1 = worker w). Both pointers are optional; a null
// registry/recorder makes every telemetry call a no-op.
//
// Confirmed suspects hand off to the existing localization pipeline via
// localize(): controller risk model, augmented with the verdict's missing
// rules, through ScoutLocalizer (change-log stage 2 included).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/checker/logical_bdd_cache.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/runtime/campaign.h"
#include "src/scout/scout_system.h"
#include "src/stream/event_bus.h"
#include "src/stream/incremental_checker.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace scout {
class PolicyIndex;
}  // namespace scout

namespace scout::telemetry {
class FlightRecorder;
class HealthEngine;
}  // namespace scout::telemetry

namespace scout::stream {

class IncidentBuilder;

struct MonitorVerdict {
  std::uint64_t first_seq = 0;  // cursor before the drain
  std::uint64_t last_seq = 0;   // cursor after (one past the last event)
  std::size_t events = 0;
  FabricCheck check;            // whole-fabric verdict after the batch
  double drain_ms = 0.0;        // wall time of this drain (diagnostics)
};

class MonitorLoop {
 public:
  struct Options {
    bool incremental = true;
    IncrementalChecker::Options checker{};
    // Localizer knobs for localize() (stage-2 recency window etc.).
    ScoutLocalizer::Options localizer{};
    bool compact_bus = true;  // drop drained events from the bus

    // Telemetry sinks, both optional. The registry needs at least
    // executor.workers() shards; the recorder needs workers()+1 lanes.
    telemetry::MetricsRegistry* metrics = nullptr;
    telemetry::TraceRecorder* trace = nullptr;
    // Take a metrics snapshot every N drains (0 = never); snapshots
    // accumulate in periodic_snapshots().
    std::size_t snapshot_every_batches = 0;

    // Incident provenance (observe-only, incident.h): each drain feeds
    // the builder its events and verdict; a clean→failing transition
    // additionally runs localize() and attaches the hypothesis as the
    // incident's suspects. Verdicts are composed before the builder runs,
    // so attaching it cannot perturb a digest.
    IncidentBuilder* incidents = nullptr;
    // Flight recorder (lane 0 = driver): each drain records a verdict
    // summary plus one entry per cause-bearing event.
    telemetry::FlightRecorder* flight = nullptr;
    // When non-empty and a flight recorder is attached, a clean→failing
    // verdict transition dumps the recorder here (first-failure context).
    std::string flight_dump_path{};
    // Health/SLO engine: fed lifetime-cumulative totals (events over the
    // detection budget, full rebuilds, ring pressure) at every bridge.
    telemetry::HealthEngine* health = nullptr;
    // Cardinality cap on the live per-switch churn gauges: only the K
    // highest-churn switches get their own "stream.churn.sw<N>" series
    // each bridge; the remainder folds into "stream.churn.other". 0
    // disables per-switch series entirely.
    std::size_t churn_top_k = 32;
  };

  MonitorLoop(SimNetwork& net, EventBus& bus, runtime::Executor& executor);
  MonitorLoop(SimNetwork& net, EventBus& bus, runtime::Executor& executor,
              Options options);
  ~MonitorLoop();
  MonitorLoop(const MonitorLoop&) = delete;
  MonitorLoop& operator=(const MonitorLoop&) = delete;

  // Bootstrap: skip events published so far (deployment noise) and, in
  // incremental mode, collect every TCAM once and build the resident
  // L/T BDDs. The only TCAM collection the monitor ever performs.
  void prime();

  // Drain everything published since the cursor and return the fabric
  // verdict after the batch. Event-to-detection latencies land in the
  // "stream.wall_latency_ms" / "stream.sim_latency_ms" histograms.
  [[nodiscard]] MonitorVerdict drain();

  // Hand the verdict's confirmed suspects to SCOUT localization over the
  // controller risk model (policy index cached per compiled epoch).
  [[nodiscard]] LocalizationResult localize(const FabricCheck& check) const;

  // Stopgap remediation of a verdict: reinstall the missing rules through
  // ScoutSystem::remediate (sharded re-check included). Returns the number
  // of rules still missing afterwards.
  [[nodiscard]] std::size_t remediate(const FabricCheck& check);

  // Move everything published concurrently (via the bus's attached
  // MpscRing, if any) into the serial log. prime() and drain() call this
  // first, so callers rarely need it directly; it is public for drivers
  // that want to observe the backlog between drains.
  std::size_t ingest_ring();

  [[nodiscard]] std::size_t batches() const noexcept {
    SerialGuard g{serial_};
    return batches_;
  }
  [[nodiscard]] IncrementalChecker::Stats checker_stats() const;

  // Bridge the latest checker/bus/arena values into the registry and
  // return a merged snapshot (empty when no registry is attached).
  [[nodiscard]] telemetry::MetricsSnapshot snapshot_metrics();

  // Snapshots taken by the snapshot_every_batches cadence.
  [[nodiscard]] const std::vector<telemetry::MetricsSnapshot>&
  periodic_snapshots() const noexcept {
    SerialGuard g{serial_};
    return periodic_snapshots_;
  }

 private:
  std::size_t ingest_ring_events() SCOUT_REQUIRES(serial_);
  void register_metrics() SCOUT_REQUIRES(serial_);
  // Fold the delta since the last bridge of every polled counter source
  // (checker stats, bus stats, arena totals) into the registry.
  void bridge_counters() SCOUT_REQUIRES(serial_);
  void update_churn_gauges() SCOUT_REQUIRES(serial_);
  [[nodiscard]] LocalizationResult localize_impl(const FabricCheck& check)
      const SCOUT_REQUIRES(serial_);
  void observe_incident(const MonitorVerdict& verdict,
                        std::span<const StreamEvent> events, SimTime sim_now)
      SCOUT_REQUIRES(serial_);
  void record_flight(const MonitorVerdict& verdict,
                     std::span<const StreamEvent> events, SimTime sim_now,
                     bool failing) SCOUT_REQUIRES(serial_);

  // Driver-phase capability: the monitor's cursor/batch/bridge state is
  // mutated only between executor runs, by the one thread driving the
  // loop. Workers touch the checker's shards, never these members. Debug
  // builds abort if a second thread enters (common/mutex.h).
  mutable SerialCapability serial_{"MonitorLoop"};

  SimNetwork* net_;
  EventBus* bus_;
  runtime::Executor* executor_;
  Options options_;
  EventBus::Cursor cursor_ SCOUT_GUARDED_BY(serial_) = 0;
  std::size_t batches_ SCOUT_GUARDED_BY(serial_) = 0;

  std::unique_ptr<IncrementalChecker> checker_;  // incremental mode
  ScoutSystem full_system_;                      // full-recheck mode
  std::unique_ptr<LogicalBddCache> full_cache_;

  // Registry handles (no-ops when options_.metrics == nullptr).
  telemetry::Counter batches_counter_;
  telemetry::Counter events_counter_;
  telemetry::Histogram wall_latency_ms_;
  telemetry::Histogram sim_latency_ms_;
  telemetry::Histogram drain_ms_;
  telemetry::Histogram batch_events_;
  telemetry::Gauge bus_backlog_;
  telemetry::Gauge bus_cursor_lag_;
  // Bridged-counter handles, registered once — bridge_counters() runs per
  // drain and must not pay name lookups there.
  telemetry::Counter bus_published_;
  telemetry::Counter bus_compactions_;
  telemetry::Counter bus_compacted_events_;
  telemetry::Counter initial_builds_;
  telemetry::Counter events_applied_;
  telemetry::Counter incremental_updates_;
  telemetry::Counter full_rebuilds_;
  telemetry::Counter epoch_rebuilds_;
  telemetry::Counter threshold_trips_;
  telemetry::Counter unsafe_rebuilds_;
  telemetry::Counter overflow_resyncs_;
  telemetry::Counter diff_recomputes_;
  telemetry::Counter verdicts_reused_;
  // Concurrent-publish instrumentation, registered only when the bus has a
  // ring attached at construction time.
  telemetry::Counter bus_ingested_;
  telemetry::Counter bus_resyncs_synthesized_;
  telemetry::Counter ring_published_;
  telemetry::Counter ring_drained_;
  telemetry::Counter ring_evictions_;
  telemetry::Counter ring_full_stalls_;
  telemetry::Gauge ring_occupancy_;
  telemetry::Gauge ring_high_water_;
  std::vector<telemetry::Gauge> ring_lag_gauges_;  // per publisher shard
  telemetry::Gauge arena_nodes_;
  telemetry::Gauge arena_peak_nodes_;
  telemetry::Gauge arena_rollbacks_;
  telemetry::Gauge unique_load_;
  telemetry::Gauge cache_hit_rate_;
  telemetry::Gauge resident_switches_;
  // Top-K live churn series, registered lazily as switches enter the top
  // set (keyed by raw switch id); churn_other_ rolls up everything else.
  // A switch that drops out of the top set has its gauge zeroed, not
  // unregistered — registry names are interned for the process lifetime.
  std::unordered_map<std::uint32_t, telemetry::Gauge> churn_gauges_by_sw_;
  telemetry::Gauge churn_other_gauge_;
  // Fault-engine activity: gray rendering-layer counters plus one eviction
  // counter per agent, named "tcam.evictions.<policy>" so distinct
  // policies surface as distinct series (agents on the same policy fold
  // into one counter via the registry's name interning).
  telemetry::Counter gray_misrenders_counter_;
  telemetry::Counter gray_drops_counter_;
  std::vector<telemetry::Counter> eviction_counters_;  // agent order
  // Last bridged values for delta-folding cumulative sources.
  IncrementalChecker::Stats bridged_checker_ SCOUT_GUARDED_BY(serial_){};
  EventBus::Stats bridged_bus_ SCOUT_GUARDED_BY(serial_){};
  MpscRing::Stats bridged_ring_ SCOUT_GUARDED_BY(serial_){};
  std::uint64_t bridged_gray_misrenders_ SCOUT_GUARDED_BY(serial_) = 0;
  std::uint64_t bridged_gray_drops_ SCOUT_GUARDED_BY(serial_) = 0;
  std::vector<std::uint64_t> bridged_evictions_ SCOUT_GUARDED_BY(serial_);
  // Health-engine inputs: lifetime event totals and the count of events
  // whose event→verdict wall latency exceeded the detection budget.
  std::uint64_t events_total_ SCOUT_GUARDED_BY(serial_) = 0;
  std::uint64_t events_over_budget_ SCOUT_GUARDED_BY(serial_) = 0;
  // Previous verdict state, for clean→failing transition detection
  // (incident opens, flight-recorder dump).
  bool last_verdict_failing_ SCOUT_GUARDED_BY(serial_) = false;

  // Registered bus readers — one per checker shard (one total in full
  // mode). Their cursors pin EventBus::compact(): no event is reclaimed
  // while any shard's reader still precedes it (the multi-cursor
  // compaction boundary).
  std::vector<EventBus::ReaderId> readers_ SCOUT_GUARDED_BY(serial_);

  std::vector<telemetry::MetricsSnapshot> periodic_snapshots_
      SCOUT_GUARDED_BY(serial_);

  // localize() cache
  mutable std::unique_ptr<PolicyIndex> policy_index_
      SCOUT_GUARDED_BY(serial_);
  mutable std::uint64_t policy_index_epoch_ SCOUT_GUARDED_BY(serial_) = 0;
};

}  // namespace scout::stream
