// MonitorLoop: drains event batches off the bus, fans the per-switch
// incremental work over the runtime executor with stable switch affinity,
// and emits fabric verdicts with event-to-detection latency stamps.
//
// Two modes, one verdict type:
//  * incremental (default) — stage the batch's TCAM deltas onto the
//    per-switch shards, process each shard on one worker, compose the
//    fabric verdict from the per-switch cached results;
//  * full recheck — the PR 4 baseline: every drain runs the sharded
//    ScoutSystem::check_all over a resident-L LogicalBddCache.
// Verdict streams are bit-identical between the modes (and across worker
// counts); bench/stream_latency.cpp enforces that while measuring the
// throughput gap.
//
// Confirmed suspects hand off to the existing localization pipeline via
// localize(): controller risk model, augmented with the verdict's missing
// rules, through ScoutLocalizer (change-log stage 2 included).
#pragma once

#include <memory>
#include <vector>

#include "src/checker/logical_bdd_cache.h"
#include "src/runtime/campaign.h"
#include "src/scout/scout_system.h"
#include "src/stream/event_bus.h"
#include "src/stream/incremental_checker.h"

namespace scout {
class PolicyIndex;
}  // namespace scout

namespace scout::stream {

struct MonitorVerdict {
  std::uint64_t first_seq = 0;  // cursor before the drain
  std::uint64_t last_seq = 0;   // cursor after (one past the last event)
  std::size_t events = 0;
  FabricCheck check;            // whole-fabric verdict after the batch
  double drain_ms = 0.0;        // wall time of this drain (diagnostics)
};

class MonitorLoop {
 public:
  struct Options {
    bool incremental = true;
    IncrementalChecker::Options checker{};
    // Localizer knobs for localize() (stage-2 recency window etc.).
    ScoutLocalizer::Options localizer{};
    bool compact_bus = true;  // drop drained events from the bus
  };

  MonitorLoop(SimNetwork& net, EventBus& bus, runtime::Executor& executor);
  MonitorLoop(SimNetwork& net, EventBus& bus, runtime::Executor& executor,
              Options options);
  ~MonitorLoop();
  MonitorLoop(const MonitorLoop&) = delete;
  MonitorLoop& operator=(const MonitorLoop&) = delete;

  // Bootstrap: skip events published so far (deployment noise) and, in
  // incremental mode, collect every TCAM once and build the resident
  // L/T BDDs. The only TCAM collection the monitor ever performs.
  void prime();

  // Drain everything published since the cursor and return the fabric
  // verdict after the batch. Detection latencies (publish -> verdict
  // wall time, ms) for the drained events append to latencies_ms().
  [[nodiscard]] MonitorVerdict drain();

  // Hand the verdict's confirmed suspects to SCOUT localization over the
  // controller risk model (policy index cached per compiled epoch).
  [[nodiscard]] LocalizationResult localize(const FabricCheck& check) const;

  [[nodiscard]] const std::vector<double>& latencies_ms() const noexcept {
    return latencies_ms_;
  }
  void clear_latencies() { latencies_ms_.clear(); }

  [[nodiscard]] std::size_t batches() const noexcept { return batches_; }
  [[nodiscard]] IncrementalChecker::Stats checker_stats() const;

 private:
  SimNetwork* net_;
  EventBus* bus_;
  runtime::Executor* executor_;
  Options options_;
  EventBus::Cursor cursor_ = 0;
  std::size_t batches_ = 0;
  std::vector<double> latencies_ms_;

  std::unique_ptr<IncrementalChecker> checker_;  // incremental mode
  ScoutSystem full_system_;                      // full-recheck mode
  std::unique_ptr<LogicalBddCache> full_cache_;

  mutable std::unique_ptr<PolicyIndex> policy_index_;  // localize() cache
  mutable std::uint64_t policy_index_epoch_ = 0;
};

}  // namespace scout::stream
