// Typed events for the continuous-verification stream (paper framing:
// Scout runs *continuously* against a live fabric; Algorithm 1 reasons
// about "recently applied actions" — the stream subsystem turns the batch
// checker into a monitor that consumes exactly those actions as they
// happen instead of re-collecting state from scratch).
//
// Every observable mutation of the deployment publishes one event:
//  * TCAM deltas (install / match-key removal / eviction / in-place bit
//    corruption) carry the exact hardware rule images, published by the
//    switch agent *after* rendering — a VRF-rewrite software bug is
//    therefore visible in the event, just as it is in the TCAM.
//  * control-plane transitions (agent crash/recover, channel down/up,
//    TCAM overflow, full switch resync).
//  * policy-layer actions (benign change records; compiled-policy pushes,
//    which bump Controller::compiled_epoch() and invalidate resident
//    logical BDDs).
//
// Events are the *sole* input of stream::IncrementalChecker: it mirrors
// each switch's TCAM from the rule events and never re-collects, so a
// mutation path that skipped publication would silently diverge — the
// differential tests (tests/test_stream_monitor.cpp) pin the event
// instrumentation against fresh ScoutSystem::check_all output.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/common/ids.h"
#include "src/common/sim_clock.h"
#include "src/policy/object_ref.h"
#include "src/stream/cause.h"
#include "src/tcam/tcam_rule.h"

namespace scout::stream {

enum class StreamEventType : std::uint8_t {
  // -- TCAM deltas (drive the incremental T-BDD) ----------------------------
  kRuleInstalled,   // `rule` added to the switch TCAM (post-rendering image)
  kRulesRemoved,    // every TCAM copy matching `rule` (same_match) removed
  kRuleEvicted,     // exactly one copy bytewise-equal to `rule` evicted
  kRuleModified,    // entry at `tcam_index` rewritten in place: rule->rule_after
  kSwitchResynced,  // TCAM wiped; reinstalls follow as kRuleInstalled events
  // -- control-plane transitions (informational to the checker) -------------
  kTcamOverflow,    // install rejected by hardware; TCAM unchanged
  kAgentCrashed,
  kAgentRecovered,
  kChannelDown,
  kChannelUp,
  // -- policy layer ----------------------------------------------------------
  kPolicyPushed,    // compiled policy regenerated; `epoch` = new compiled_epoch
  kPolicyChanged,   // record-only change-log entry for `object` (benign churn)
  // -- backpressure degradation ----------------------------------------------
  // Synthesized by EventBus::ingest_ring when the MPSC ring evicted events
  // for `sw` (full shard under MpscRing::FullPolicy::kEvictToResync): the
  // switch's event stream has a gap, so the incremental checker re-collects
  // its TCAM from ground truth — the one post-prime exception to "events
  // are the sole input", taken only at publisher quiescence.
  kShadowResync,
};

[[nodiscard]] std::string_view to_string(StreamEventType t) noexcept;

struct StreamEvent {
  // Monotone sequence number, assigned by the bus at publish. The cursor
  // contract: seq values are dense and strictly increasing, so a consumer
  // holding cursor c has seen exactly the events with seq < c.
  std::uint64_t seq = 0;
  SimTime time{};  // simulation clock at publish
  // Wall-clock anchor for event-to-detection latency measurements. Never
  // feeds verdicts (they must be bit-identical across runs) — diagnostics
  // only.
  std::chrono::steady_clock::time_point wall{};
  StreamEventType type = StreamEventType::kRuleInstalled;
  SwitchId sw{};           // invalid for fabric-wide events (policy layer)
  TcamRule rule{};         // install/remove/evict image; modify: before image
  TcamRule rule_after{};   // modify: after image
  std::size_t tcam_index = 0;  // modify: table position rewritten in place
  std::size_t count = 0;       // kRulesRemoved: copies the match took out
  std::uint64_t epoch = 0;     // kPolicyPushed: new compiled epoch
  ObjectRef object{};          // kPolicyChanged: the recorded object
  // Controller change-log size when the event was published: the cursor
  // layering over ChangeLog. A consumer can slice change_log.records() at
  // two events' marks to get exactly the policy actions between them —
  // what SCOUT stage 2 calls "recently applied actions".
  std::size_t change_log_mark = 0;
  // Causal provenance: the fault-engine episode that produced this event,
  // null for benign churn. Filled by EventBus::publish from the ambient
  // CauseScope when the publisher left it null; never read by verdicts or
  // digests — incident attribution only.
  CauseId cause{};
};

}  // namespace scout::stream
