// Deterministic churn generator: replays a weighted mix of the paper's
// §II-B / §V-B failure and policy actions against a live SimNetwork, with
// every action publishing its events to the attached bus. The continuous
// monitoring driver pumps it between drains; the same (seed, mix, network)
// always produces the same op sequence and therefore the same event
// stream, which is what lets incremental and full-recheck monitoring runs
// be compared verdict-for-verdict.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/rng.h"
#include "src/scout/sim_network.h"
#include "src/stream/cause.h"
#include "src/stream/event_bus.h"

namespace scout::stream {

// Relative op weights (normalized internally; zero disables an op). The
// defaults model a fault-dominated live fabric: a steady drip of 1-3-event
// TCAM faults, occasional repair/resync bursts that republish a whole
// switch, and rare policy-layer actions (a migration bumps the compiled
// epoch, the monitor's most expensive path).
struct ChurnMix {
  double evict = 0.50;           // agent drops 1-3 low-priority rules
  double corrupt = 0.28;         // one TCAM bit flip, half detected
  double resync = 0.05;          // controller re-pushes one healthy switch
  double crash = 0.015;          // agent crashes mid-resync (switch wiped)
  double recover = 0.015;        // crashed agent recovers + resync
  double channel_flap = 0.03;    // control channel down; up + resync later
  double benign_change = 0.10;   // record-only policy churn (stage-2 noise)
  double migrate = 0.005;        // endpoint migration: epoch bump + resyncs
};

class ChurnGenerator {
 public:
  ChurnGenerator(SimNetwork& net, EventBus& bus, std::uint64_t seed,
                 ChurnMix mix = {});

  // Apply `ops` churn ops (one monitoring interval's worth of fabric
  // activity) and return how many events they published. Most ops publish
  // 1-3 events; repair/resync ops burst a whole switch's reinstalls. If
  // the interval published nothing (degenerate network), a forced resync
  // valve tries once to restart the stream before returning 0 — pass
  // allow_valve=false to skip that (ConcurrentChurnDriver's control tail
  // rides alongside a data phase that already published).
  std::size_t pump(std::size_t ops, bool allow_valve = true);

  [[nodiscard]] std::size_t ops_applied() const noexcept { return ops_; }

  // Incident-provenance ground truth: while attached, every harmful op
  // (evict / corrupt / crash — the ops that can break L-T consistency)
  // that actually mutated state appends one entry. Causes are minted
  // regardless (counter bumps, no RNG draws), so attaching a ledger never
  // changes the op stream or the verdict digests. Benign ops (resyncs,
  // recoveries, flaps, change records, migrations) stay null-cause.
  void set_cause_ledger(CauseLedger* ledger) noexcept { ledger_ = ledger; }

 private:
  void step();
  [[nodiscard]] SwitchAgent& agent_at(std::size_t index);
  // A random connected, non-crashed switch; nullptr when none qualifies.
  [[nodiscard]] SwitchAgent* healthy_agent();

  SimNetwork* net_;
  EventBus* bus_;
  Rng rng_;
  ChurnMix mix_;
  std::size_t ops_ = 0;
  std::vector<SwitchId> crashed_;
  std::vector<SwitchId> disconnected_;
  CauseLedger* ledger_ = nullptr;
  std::uint64_t cause_ordinal_ = 0;
};

// Multi-threaded churn driver: data-plane faults (evict / corrupt — the
// switch-local ops) execute on N persistent publisher threads that append
// to the bus's attached MpscRing, while control-plane churn (resyncs,
// crashes, flaps, migrations — everything that touches the controller)
// stays a serial tail on the driver thread via a nested ChurnGenerator.
//
// Determinism contract: the data-op schedule is a pure function of
// (seed, interval index, op index) — never of the publisher count or of
// thread timing. Each op pins its fault parameters at schedule time
// (agent, kind, private rng seed, pre-advanced sim time); publishers only
// execute them. All of one switch's ops route to one shard
// (agent_index % publishers) and stay in schedule order there, so
// per-switch event order — the only order the incremental checker's
// verdict depends on — is identical across 1/2/4 publishers and equal to
// a serial-transport execution of the same schedule. That is what lets
// tests/test_stream_monitor.cpp and bench/stream_latency.cpp demand
// bit-identical verdict digests between the serial and concurrent legs.
//
// Two driving modes:
//  * pump(ops) — phased: schedule the interval's data ops, run them to
//    completion on the publishers, ingest the ring, then run the serial
//    control tail. The monitor drains between pumps (the lock-step shape
//    run_continuous_monitoring uses for digest comparison).
//  * start(total) / producing() / stop() — pipelined: publishers free-run
//    the whole budget while the monitor drains concurrently. Use a
//    kBackpressure ring so nothing is evicted mid-run; stop() closes the
//    ring (unblocking any spinner) and joins the in-flight generation.
class ConcurrentChurnDriver {
 public:
  struct Options {
    std::size_t publishers = 2;
    // Fraction of each pump()'s ops run as the serial control-plane tail
    // (at least one op; the rest are concurrent data-plane faults).
    double control_fraction = 0.25;
    // Weights: evict/corrupt drive the data phase; the rest the tail.
    ChurnMix mix{};
    // When false no threads are spawned and pump() executes the identical
    // schedule serially through the bus — the differential baseline.
    bool use_ring = true;
  };

  ConcurrentChurnDriver(SimNetwork& net, EventBus& bus, std::uint64_t seed);
  ConcurrentChurnDriver(SimNetwork& net, EventBus& bus, std::uint64_t seed,
                        Options options);
  ~ConcurrentChurnDriver();
  ConcurrentChurnDriver(const ConcurrentChurnDriver&) = delete;
  ConcurrentChurnDriver& operator=(const ConcurrentChurnDriver&) = delete;

  // Phased interval: data phase, ring ingest, control tail. Returns the
  // events that reached the serial log. Driver thread only.
  std::size_t pump(std::size_t ops);

  // Pipelined: hand the publishers a segment's schedule and return
  // immediately. Driver thread only; requires use_ring.
  void start(std::size_t total_ops);
  [[nodiscard]] bool producing() const;
  // Serial control-plane tail for `ops` interval-ops (the same
  // control_fraction split pump() applies). Pipelined drivers call this
  // between free-run segments, at publisher quiescence — control churn
  // mutates the controller and republishes switches, which must never
  // overlap the data-plane publishers.
  std::size_t pump_control(std::size_t ops);
  // Request early stop, close the ring (unblocks backpressure spinners)
  // and join the in-flight generation. Idempotent.
  void stop();

  // Attach the provenance ground-truth ledger (data ops and the serial
  // control tail alike). Data-op truths are buffered as per-op mutation
  // flags by whichever publisher executed the op and folded into the
  // ledger serially at generation quiescence, so the ledger itself is
  // never touched concurrently.
  void set_cause_ledger(CauseLedger* ledger) noexcept {
    ledger_ = ledger;
    control_.set_cause_ledger(ledger);
  }

  [[nodiscard]] std::size_t publishers() const noexcept {
    return options_.publishers;
  }
  [[nodiscard]] std::size_t ops_applied() const noexcept;

 private:
  struct DataOp {
    enum class Kind : std::uint8_t { kEvict, kCorrupt };
    std::size_t agent_index = 0;
    Kind kind = Kind::kEvict;
    std::uint64_t rng_seed = 0;  // private to the op: no shared rng state
    SimTime time{};              // pre-advanced at schedule time
    // Minted at schedule time, so the id is a pure function of
    // (seed, interval, op index) — identical across publisher counts and
    // across the serial / ring transports, like every other op field.
    CauseId cause{};
  };

  void make_schedule(std::size_t data_ops);
  // Executes the op under its CauseScope; returns whether it mutated
  // state (an empty evict or a corrupt on an empty TCAM is not truth).
  bool run_op(const DataOp& op);
  // Serial fold of the generation's mutation flags into the ledger.
  // Driver thread only, at publisher quiescence.
  void fold_schedule_truths();
  void dispatch(bool wait_done);
  void worker_main(std::size_t pub);

  SimNetwork* net_;
  EventBus* bus_;
  Options options_;
  std::uint64_t schedule_seed_;
  std::uint64_t interval_ = 0;
  ChurnGenerator control_;

  // Read-only to workers while a generation is in flight; mutated by the
  // driver only between generations (pending_workers_ == 0).
  std::vector<DataOp> schedule_;
  // Parallel to schedule_: 1 where the op mutated state. Each slot is
  // written by exactly one worker (the op's shard owner) while a
  // generation is in flight — disjoint bytes, no race — and read by the
  // driver only after the generation barrier.
  std::vector<std::uint8_t> schedule_mutated_;
  bool schedule_folded_ = true;
  CauseLedger* ledger_ = nullptr;
  std::uint64_t data_cause_ordinal_ = 0;
  std::atomic<std::size_t> executed_{0};
  std::atomic<bool> stop_requested_{false};

  // Generation barrier: the driver bumps generation_ to hand the current
  // schedule_ to every worker; each worker runs its residue class and
  // decrements pending_workers_, the last one waking done_cv_.
  mutable Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  std::uint64_t generation_ SCOUT_GUARDED_BY(mu_) = 0;
  std::size_t pending_workers_ SCOUT_GUARDED_BY(mu_) = 0;
  bool shutdown_ SCOUT_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace scout::stream
