// Deterministic churn generator: replays a weighted mix of the paper's
// §II-B / §V-B failure and policy actions against a live SimNetwork, with
// every action publishing its events to the attached bus. The continuous
// monitoring driver pumps it between drains; the same (seed, mix, network)
// always produces the same op sequence and therefore the same event
// stream, which is what lets incremental and full-recheck monitoring runs
// be compared verdict-for-verdict.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/scout/sim_network.h"
#include "src/stream/event_bus.h"

namespace scout::stream {

// Relative op weights (normalized internally; zero disables an op). The
// defaults model a fault-dominated live fabric: a steady drip of 1-3-event
// TCAM faults, occasional repair/resync bursts that republish a whole
// switch, and rare policy-layer actions (a migration bumps the compiled
// epoch, the monitor's most expensive path).
struct ChurnMix {
  double evict = 0.50;           // agent drops 1-3 low-priority rules
  double corrupt = 0.28;         // one TCAM bit flip, half detected
  double resync = 0.05;          // controller re-pushes one healthy switch
  double crash = 0.015;          // agent crashes mid-resync (switch wiped)
  double recover = 0.015;        // crashed agent recovers + resync
  double channel_flap = 0.03;    // control channel down; up + resync later
  double benign_change = 0.10;   // record-only policy churn (stage-2 noise)
  double migrate = 0.005;        // endpoint migration: epoch bump + resyncs
};

class ChurnGenerator {
 public:
  ChurnGenerator(SimNetwork& net, EventBus& bus, std::uint64_t seed,
                 ChurnMix mix = {});

  // Apply `ops` churn ops (one monitoring interval's worth of fabric
  // activity) and return how many events they published. Most ops publish
  // 1-3 events; repair/resync ops burst a whole switch's reinstalls. If
  // the interval published nothing (degenerate network), a forced resync
  // valve tries once to restart the stream before returning 0.
  std::size_t pump(std::size_t ops);

  [[nodiscard]] std::size_t ops_applied() const noexcept { return ops_; }

 private:
  void step();
  [[nodiscard]] SwitchAgent& agent_at(std::size_t index);
  // A random connected, non-crashed switch; nullptr when none qualifies.
  [[nodiscard]] SwitchAgent* healthy_agent();

  SimNetwork* net_;
  EventBus* bus_;
  Rng rng_;
  ChurnMix mix_;
  std::size_t ops_ = 0;
  std::vector<SwitchId> crashed_;
  std::vector<SwitchId> disconnected_;
};

}  // namespace scout::stream
