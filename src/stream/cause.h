// Causal provenance for the continuous monitor (incident-provenance
// layer): every fault engine mints a seed-deterministic CauseId per
// harmful episode/burst/op and stamps it onto the stream events that
// episode generates. Benign churn (resyncs, recoveries, benign change
// records) carries the null cause.
//
// The stamp is pure metadata: verdict digests are computed only over
// FabricCheck verdicts, never over events, so carrying (or dropping) the
// cause field cannot perturb a digest. Minting consumes no RNG draws and
// is a pure function of the engine's seed-derived schedule, so cause ids
// are bit-identical across {serial, ring} transports and publisher
// counts — the property bench/incident_accuracy gates.
//
// Two delivery mechanisms:
//  * an ambient thread-local cause (CauseScope) picked up by
//    EventBus::publish for events published while an engine op runs —
//    covers the common case where the engine calls into SwitchAgent and
//    the agent publishes on its behalf;
//  * explicit stamping (StreamEvent::cause) for engines that interleave
//    benign and harmful publications inside one call (gray misrenders).
//    publish() only fills a *null* cause, so explicit stamps win.
//
// CauseLedger is the ground-truth side: engines append one entry per
// state-mutating op (no-ops — empty evict, corrupt on empty TCAM — are
// not truth). IncidentBuilder scores its attribution against the ledger.
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "src/common/ids.h"
#include "src/common/sim_clock.h"

namespace scout::stream {

enum class CauseEngine : std::uint8_t {
  kNone = 0,
  kChurnEvict,    // ChurnGenerator / ConcurrentChurnDriver eviction op
  kChurnCorrupt,  // in-place TCAM bit corruption op
  kChurnCrash,    // crash-and-resync op
  kGray,          // gray-agent misrender burst
  kStorm,         // StormSchedule episode (rack-power / brownout / upgrade)
  kObjectFault,   // ObjectFaultInjector full/partial/stale fault
};

[[nodiscard]] const char* to_string(CauseEngine e) noexcept;

// Packed (engine, ordinal) identifier. Engine lives in the top byte,
// the ordinal in the low 56 bits; 0 is the reserved null cause. Stays
// trivially copyable because it rides inside StreamEvent through the
// lock-free MPSC ring.
class CauseId {
 public:
  constexpr CauseId() = default;

  [[nodiscard]] static constexpr CauseId make(CauseEngine engine,
                                              std::uint64_t ordinal) noexcept {
    CauseId id;
    id.bits_ = (static_cast<std::uint64_t>(engine) << 56) |
               (ordinal & kOrdinalMask);
    return id;
  }

  // Rehydrates a CauseId from raw() bits (flight-recorder entries carry
  // raw values to stay POD-only).
  [[nodiscard]] static constexpr CauseId from_raw(std::uint64_t bits) noexcept {
    CauseId id;
    id.bits_ = bits;
    return id;
  }

  [[nodiscard]] constexpr bool is_null() const noexcept { return bits_ == 0; }
  [[nodiscard]] constexpr CauseEngine engine() const noexcept {
    return static_cast<CauseEngine>(bits_ >> 56);
  }
  [[nodiscard]] constexpr std::uint64_t ordinal() const noexcept {
    return bits_ & kOrdinalMask;
  }
  [[nodiscard]] constexpr std::uint64_t raw() const noexcept { return bits_; }

  friend constexpr bool operator==(CauseId a, CauseId b) noexcept {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(CauseId a, CauseId b) noexcept {
    return a.bits_ != b.bits_;
  }
  friend constexpr bool operator<(CauseId a, CauseId b) noexcept {
    return a.bits_ < b.bits_;
  }

 private:
  static constexpr std::uint64_t kOrdinalMask = (1ULL << 56) - 1;
  std::uint64_t bits_ = 0;
};

static_assert(std::is_trivially_copyable_v<CauseId>);

// Ambient cause for the current thread; null outside any CauseScope.
[[nodiscard]] CauseId current_cause() noexcept;

// RAII ambient-cause frame. Scopes nest: the constructor saves the
// previous ambient cause and the destructor restores it, so an engine op
// that triggers another engine's code keeps the innermost attribution.
class CauseScope {
 public:
  explicit CauseScope(CauseId cause) noexcept;
  ~CauseScope();

  CauseScope(const CauseScope&) = delete;
  CauseScope& operator=(const CauseScope&) = delete;

 private:
  CauseId previous_;
};

// One ground-truth fact: `cause` mutated state on `sw` at sim time `time`.
struct CauseTruth {
  CauseId cause{};
  SwitchId sw{};
  SimTime time{};
};

// Append-only ground-truth log, written from the serial control phase
// only (concurrent engines buffer per-op mutation flags and fold them in
// at generation quiescence). Attaching a ledger never changes engine
// behaviour — engines mint causes unconditionally and record them only
// when a ledger is present.
class CauseLedger {
 public:
  void record(CauseId cause, SwitchId sw, SimTime time) {
    entries_.push_back({cause, sw, time});
  }

  [[nodiscard]] const std::vector<CauseTruth>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

 private:
  std::vector<CauseTruth> entries_;
};

}  // namespace scout::stream
