// Incremental L-T checker: the continuous-verification core.
//
// The batch pipeline re-collects every TCAM and rebuilds every T-BDD per
// check. This checker instead keeps, per switch, a private BDD arena with
// the logical BDD L resident *below* a checkpoint watermark and the
// deployed BDD T resident *above* it, plus a shadow copy of the TCAM
// mirrored purely from stream events. Each TCAM delta updates T by cube
// operations against the checkpointed base:
//
//   install allow r   ->  T := T ∨ cube(r)
//   remove  allow r   ->  T := (T ∧ ¬cube(r)) ∨ ⋃ cube(overlapping allows)
//   modify  r -> r'   ->  the removal update for r, then T := T ∨ cube(r')
//   resync            ->  T := false (reinstalls arrive as install events)
//
// These updates are *exact* — not approximate — whenever the switch's
// ruleset is in the compiler's shape: every deny rule is the catch-all
// default and sits at a priority no allow rule reaches. Under first-match
// folding that makes the allowed set a pure union of allow cubes, where
// install is ∨ and removal is ∧¬ patched by re-∨-ing the cubes of
// remaining allows that overlap the removed one (identical duplicate
// copies included). The checker tracks the safety condition per switch
// (non-catch-all deny count, allow/deny priority extremes); any delta
// outside it falls back to a full T re-encode — counted separately, and
// zero in every compiler-generated workload.
//
// Full rebuilds (rollback to the watermark + ruleset_to_bdd over the
// shadow) happen on exactly three triggers, each counted:
//   * epoch    — Controller::compiled_epoch() moved: L itself is stale, the
//                whole arena is re-encoded;
//   * threshold— churned T versions leave dead nodes above the watermark
//                (the arena has no GC); past a divergence threshold the
//                arena is compacted by rollback + re-encode;
//   * unsafe   — a delta outside the cube-update safety condition.
//
// Because BDDs are canonical, the incrementally maintained T is the same
// node the batch checker would build from a fresh TCAM collection, so
// verdicts are bit-identical to ScoutSystem::check_all — pinned across
// randomized event streams by tests/test_stream_monitor.cpp.
//
// Sharding: switch states are partitioned over `shard_count` shards by
// stable agent-order index; one worker processes one shard, so arenas stay
// single-threaded and the composed verdict is independent of the worker
// count (per-switch work is deterministic, composition is in agent order).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/bdd/bdd.h"
#include "src/scout/scout_system.h"
#include "src/stream/event.h"

namespace scout::telemetry {
class TraceRecorder;
}  // namespace scout::telemetry

namespace scout::stream {

class IncrementalChecker {
 public:
  struct Options {
    // Compact a switch's arena (rollback + T re-encode) when its node pool
    // has grown past factor * (pool size at the last rebuild) + slack.
    double divergence_factor = 8.0;
    std::size_t divergence_slack = 1 << 14;
  };

  struct Stats {
    std::size_t initial_builds = 0;     // prime-time L+T encodes
    std::size_t events_applied = 0;
    std::size_t incremental_updates = 0;  // cube-level T updates
    std::size_t full_rebuilds = 0;      // post-prime T re-encodes, total
    std::size_t epoch_rebuilds = 0;     //   caused by compiled-epoch bumps
    std::size_t threshold_trips = 0;    //   caused by arena divergence
    std::size_t unsafe_rebuilds = 0;    //   caused by out-of-shape deltas
    std::size_t overflow_resyncs = 0;   //   caused by ring-eviction resyncs
    std::size_t diff_recomputes = 0;    // verdicts recomputed via bdd_rule_diff
    std::size_t verdicts_reused = 0;    // switches served their cached verdict
  };

  IncrementalChecker(SimNetwork& net, std::size_t shard_count);
  IncrementalChecker(SimNetwork& net, std::size_t shard_count,
                     Options options);
  ~IncrementalChecker();
  IncrementalChecker(const IncrementalChecker&) = delete;
  IncrementalChecker& operator=(const IncrementalChecker&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept;
  [[nodiscard]] std::size_t switch_count() const noexcept;

  // Partition one drained batch's TCAM-delta events onto the per-switch
  // pending lists (serial; spans must stay valid through process_shard).
  void stage(std::span<const StreamEvent> events);

  // Apply the staged events for every switch owned by `shard` and refresh
  // those switches' verdicts against compiled epoch `epoch`. Distinct
  // shards may run concurrently; the same shard must not.
  void process_shard(std::size_t shard, std::uint64_t epoch);

  // Fabric verdict composed from the per-switch cached verdicts in agent
  // order — the same merge order as ScoutSystem::check_all, so the result
  // is comparable (and bit-identical on identical deployments).
  [[nodiscard]] FabricCheck compose() const;

  // Summed over shards after a join. All counters are pure functions of
  // the event stream (never of the worker count).
  [[nodiscard]] Stats stats() const;

  // TCAM-delta events applied per switch since construction, in agent
  // order — the live churn signal the telemetry gauges expose (and the
  // input a churn-tiered monitor would classify on). Deterministic: a pure
  // function of the event stream.
  [[nodiscard]] std::vector<std::pair<SwitchId, std::uint64_t>>
  churn_by_switch() const;

  // Aggregate BddManager stats over every per-switch arena (call between
  // process_shard runs). Node/insert totals are deterministic; capacities
  // and load factors are summed/averaged diagnostics.
  [[nodiscard]] BddManager::Stats arena_totals() const;

  // Attach a trace recorder: full-rebuild fallbacks emit instant markers
  // (reason in `detail`) on lane shard+1. nullptr detaches.
  void set_trace(telemetry::TraceRecorder* trace) noexcept {
    trace_ = trace;
  }

 private:
  struct SwitchState;
  struct Shard;

  void apply_event(Shard& shard, SwitchState& st, const StreamEvent& ev,
                   bool bdd_current);
  void note_rebuild(const Shard& shard, const SwitchState& st,
                    const char* reason);
  void rebuild_arena(Shard& shard, SwitchState& st, std::uint64_t epoch);
  void rebuild_t(SwitchState& st);
  void refresh_verdict(Shard& shard, SwitchState& st, std::uint64_t epoch);
  void recompute_shape(SwitchState& st);

  SimNetwork* net_;
  Options options_;
  std::vector<std::unique_ptr<SwitchState>> states_;  // agent order
  std::unordered_map<SwitchId, std::size_t> index_;   // sw -> states_ index
  std::vector<std::unique_ptr<Shard>> shards_;
  telemetry::TraceRecorder* trace_ = nullptr;
};

}  // namespace scout::stream
