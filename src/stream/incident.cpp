#include "src/stream/incident.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/json_writer.h"

namespace scout::stream {
namespace {

std::string cause_label(CauseId id) {
  if (id.is_null()) return "null";
  return std::string{to_string(id.engine())} + "#" +
         std::to_string(id.ordinal());
}

std::string object_label(ObjectRef ref) {
  std::ostringstream os;
  os << ref;
  return os.str();
}

}  // namespace

IncidentBuilder::IncidentBuilder(const CauseLedger* ledger,
                                 telemetry::MetricsRegistry* registry)
    : IncidentBuilder(ledger, registry, Options{}) {}

IncidentBuilder::IncidentBuilder(const CauseLedger* ledger,
                                 telemetry::MetricsRegistry* registry,
                                 Options options)
    : ledger_(ledger), options_(options) {
  if (registry != nullptr) {
    opened_counter_ = registry->counter("incident.opened");
    closed_counter_ = registry->counter("incident.closed");
    unattributed_counter_ = registry->counter("incident.unattributed");
    window_dropped_counter_ = registry->counter("incident.window.dropped");
    open_gauge_ = registry->gauge("incident.open");
    precision_gauge_ = registry->gauge("incident.precision");
    recall_gauge_ = registry->gauge("incident.recall");
    detect_wall_gauge_ = registry->gauge("incident.detect_wall_ms");
    precision_gauge_.set(1.0);
    recall_gauge_.set(1.0);
  }
}

void IncidentBuilder::observe_events(std::span<const StreamEvent> events) {
  for (const StreamEvent& ev : events) {
    if (ev.cause.is_null()) continue;
    if (window_.size() >= options_.max_window_events) {
      // Keep the oldest entries: the first cause is the one incidents
      // must name; later repeats of an already-buffered cause are
      // redundant for attribution anyway.
      ++totals_.window_dropped;
      window_dropped_counter_.add(1);
      continue;
    }
    window_.push_back(
        EventSummary{ev.seq, ev.sw, ev.cause, ev.time, ev.wall});
  }
}

bool IncidentBuilder::is_violated(SwitchId sw) const noexcept {
  return std::binary_search(current_.violated.begin(),
                            current_.violated.end(), sw);
}

bool IncidentBuilder::observe_verdict(const FabricCheck& check,
                                      std::uint64_t batch, SimTime sim_now) {
  const bool failing = !check.inconsistent.empty();
  if (!failing) {
    if (open_) close_incident(batch);
    reset_window();
    return false;
  }
  if (open_) {
    // Extend: union the violated switches (both sides sorted).
    std::vector<SwitchId> merged;
    merged.reserve(current_.violated.size() + check.inconsistent.size());
    std::set_union(current_.violated.begin(), current_.violated.end(),
                   check.inconsistent.begin(), check.inconsistent.end(),
                   std::back_inserter(merged));
    current_.violated = std::move(merged);
    return false;
  }
  open_incident(check, batch, sim_now);
  return true;
}

void IncidentBuilder::open_incident(const FabricCheck& check,
                                    std::uint64_t batch, SimTime sim_now) {
  current_ = Incident{};
  current_.id = next_id_++;
  current_.open = true;
  current_.opened_batch = batch;
  current_.detected_at = sim_now;
  current_.violated = check.inconsistent;  // already sorted ascending
  open_ = true;
  // Detection latency: opening verdict vs the earliest windowed cause
  // event on a violated switch. Stays -1 when no such event exists (the
  // damage was silent, e.g. gray drops).
  for (const EventSummary& ev : window_) {
    if (!is_violated(ev.sw)) continue;
    current_.detect_sim_ms = sim_now - ev.time;
    current_.detect_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - ev.wall)
            .count();
    break;
  }
  opened_counter_.add(1);
  open_gauge_.set(1.0);
  if (current_.detect_wall_ms >= 0) {
    detect_wall_gauge_.set(current_.detect_wall_ms);
  }
}

void IncidentBuilder::attach_suspects(const LocalizationResult& result) {
  if (!open_) return;
  current_.suspects = result.hypothesis;
  current_.suspects_unexplained = result.unexplained();
}

void IncidentBuilder::close_incident(std::uint64_t batch) {
  current_.open = false;
  current_.closed_batch = batch;

  // A: distinct causes among windowed events on violated switches, in
  // seq order (the window is seq-ordered — it is a subsequence of the
  // serial log).
  for (const EventSummary& ev : window_) {
    if (!is_violated(ev.sw)) continue;
    auto it = std::find_if(
        current_.causes.begin(), current_.causes.end(),
        [&](const IncidentCause& c) { return c.cause == ev.cause; });
    if (it == current_.causes.end()) {
      current_.causes.push_back(
          IncidentCause{ev.cause, ev.seq, ev.sw, ev.time, 1, false});
    } else {
      ++it->events;
    }
  }

  // T: distinct ledger causes in [mark, size) that touched a violated
  // switch.
  std::vector<CauseId> truth;
  if (ledger_ != nullptr) {
    const auto& entries = ledger_->entries();
    for (std::size_t i = ledger_mark_; i < entries.size(); ++i) {
      if (!is_violated(entries[i].sw)) continue;
      if (std::find(truth.begin(), truth.end(), entries[i].cause) ==
          truth.end()) {
        truth.push_back(entries[i].cause);
      }
    }
  }
  current_.truth_causes = truth.size();
  for (IncidentCause& c : current_.causes) {
    c.in_truth =
        std::find(truth.begin(), truth.end(), c.cause) != truth.end();
    if (c.in_truth) ++current_.matched_causes;
  }
  current_.first_cause_correct =
      current_.attributed() && current_.causes.front().in_truth;

  totals_.incidents += 1;
  totals_.attributed_causes += current_.causes.size();
  totals_.truth_causes += current_.truth_causes;
  totals_.matched_causes += current_.matched_causes;
  if (current_.first_cause_correct) ++totals_.first_cause_correct;
  if (!current_.attributed()) {
    ++totals_.unattributed_incidents;
    unattributed_counter_.add(1);
  }
  closed_counter_.add(1);
  open_gauge_.set(0.0);
  precision_gauge_.set(totals_.precision());
  recall_gauge_.set(totals_.recall());

  if (incidents_.size() < options_.max_incidents) {
    incidents_.push_back(std::move(current_));
  }
  open_ = false;
}

void IncidentBuilder::reset_window() {
  window_.clear();
  if (ledger_ != nullptr) ledger_mark_ = ledger_->size();
}

void IncidentBuilder::finalize(std::uint64_t batch, SimTime /*sim_now*/) {
  if (open_) {
    close_incident(batch);
    reset_window();
  }
}

void IncidentBuilder::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("schema", "scout-incidents-v1");
  w.key("incidents").begin_array();
  for (const Incident& inc : incidents_) {
    w.begin_object();
    w.field("id", static_cast<std::uint64_t>(inc.id));
    w.field("open", inc.open);
    w.field("opened_batch", inc.opened_batch);
    w.field("closed_batch", inc.closed_batch);
    w.field("detected_at_sim_ms",
            static_cast<std::int64_t>(inc.detected_at.millis()));
    w.field("detect_wall_ms", inc.detect_wall_ms);
    w.field("detect_sim_ms", inc.detect_sim_ms);
    w.key("violated").begin_array();
    for (const SwitchId sw : inc.violated) {
      w.value(static_cast<std::uint64_t>(sw.value()));
    }
    w.end_array();
    w.key("causes").begin_array();
    for (const IncidentCause& c : inc.causes) {
      w.begin_object();
      w.field("cause", cause_label(c.cause));
      w.field("engine", to_string(c.cause.engine()));
      w.field("ordinal", c.cause.ordinal());
      w.field("first_seq", c.first_seq);
      w.field("first_sw", static_cast<std::uint64_t>(c.first_sw.value()));
      w.field("first_sim_ms",
              static_cast<std::int64_t>(c.first_time.millis()));
      w.field("events", static_cast<std::uint64_t>(c.events));
      w.field("in_truth", c.in_truth);
      w.end_object();
    }
    w.end_array();
    w.key("suspects").begin_array();
    for (const ObjectRef ref : inc.suspects) w.value(object_label(ref));
    w.end_array();
    w.field("suspects_unexplained",
            static_cast<std::uint64_t>(inc.suspects_unexplained));
    w.field("truth_causes", static_cast<std::uint64_t>(inc.truth_causes));
    w.field("matched_causes",
            static_cast<std::uint64_t>(inc.matched_causes));
    w.field("first_cause_correct", inc.first_cause_correct);
    w.end_object();
  }
  w.end_array();
  w.key("totals")
      .begin_object()
      .field("incidents", static_cast<std::uint64_t>(totals_.incidents))
      .field("attributed_causes",
             static_cast<std::uint64_t>(totals_.attributed_causes))
      .field("truth_causes",
             static_cast<std::uint64_t>(totals_.truth_causes))
      .field("matched_causes",
             static_cast<std::uint64_t>(totals_.matched_causes))
      .field("first_cause_correct",
             static_cast<std::uint64_t>(totals_.first_cause_correct))
      .field("unattributed_incidents",
             static_cast<std::uint64_t>(totals_.unattributed_incidents))
      .field("window_dropped",
             static_cast<std::uint64_t>(totals_.window_dropped))
      .field("precision", totals_.precision())
      .field("recall", totals_.recall())
      .end_object();
  w.end_object();
}

std::string IncidentBuilder::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

bool IncidentBuilder::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace scout::stream
