#include "src/stream/incremental_checker.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <unordered_map>

#include "src/bdd/bdd.h"
#include "src/checker/equivalence_checker.h"
#include "src/checker/packet_encoding.h"
#include "src/common/check.h"
#include "src/common/logging.h"
#include "src/telemetry/trace.h"

namespace scout::stream {
namespace {

// "Not yet primed" epoch sentinel; Controller epochs are small counters.
constexpr std::uint64_t kNoEpoch = std::numeric_limits<std::uint64_t>::max();

// Priority extremes as 64-bit so the no-allow / no-deny sentinels compare
// correctly (union semantics need every deny above every allow).
constexpr std::int64_t kNoAllow = -1;
constexpr std::int64_t kNoDeny = std::int64_t{1} << 40;

}  // namespace

struct IncrementalChecker::SwitchState {
  SwitchState() : mgr(PacketVars::kCount, /*node_hint=*/1 << 10) {}

  SwitchId sw{};
  const SwitchAgent* agent = nullptr;

  // Arena layout: [terminal][L nodes][l_mark][T nodes + update churn].
  BddManager mgr;
  BddManager::Checkpoint l_mark{};
  BddRef l_bdd = kBddFalse;
  BddRef t_bdd = kBddFalse;
  std::uint64_t epoch = kNoEpoch;
  std::size_t nodes_at_rebuild = 1;

  // Mirror of the agent's TCAM (same contents, same table order),
  // maintained purely from stream events after the prime-time collection.
  std::vector<TcamRule> shadow;

  // Cube-update safety shape (see header). The priority extremes are
  // maintained monotonically between rebuilds — removals can leave them
  // stale, which only ever errs toward a spurious full rebuild — and are
  // recomputed exactly from the shadow at every rebuild.
  std::size_t non_catchall_denies = 0;
  std::int64_t max_allow_priority = kNoAllow;
  std::int64_t min_deny_priority = kNoDeny;
  bool t_dirty = false;  // unsafe delta seen: T must re-encode

  // A kShadowResync marker was applied (ring overflow evicted this
  // switch's events): the shadow was re-collected from ground truth and T
  // must re-encode before the next verdict — counted as an overflow
  // rebuild, distinct from the unsafe/threshold triggers.
  bool resync_pending = false;

  // Verdict cache for the current (L, T, shadow); recomputing it runs the
  // full rule diff, so untouched switches serve the cached copy.
  bool verdict_valid = false;
  CheckResult verdict;

  std::uint64_t churn = 0;  // TCAM-delta events applied, lifetime

  std::vector<const StreamEvent*> pending;

  [[nodiscard]] bool cube_safe() const noexcept {
    return non_catchall_denies == 0 &&
           min_deny_priority > max_allow_priority;
  }
};

// Per-shard scratch + counters, padded so concurrent shards never share a
// cache line through the checker.
struct alignas(64) IncrementalChecker::Shard {
  std::size_t index = 0;  // trace lane is index + 1 (lane 0 = driver)
  Stats stats;
  BddCube cube_scratch;
  std::vector<TcamRule> strip_scratch;
  // Exclusivity token: process_shard() may run concurrently across
  // *distinct* shards but never twice on the same one (the arenas and
  // scratch are single-threaded). exchange() makes a violation abort at
  // entry instead of corrupting an arena.
  std::atomic<bool> in_flight{false};
};

IncrementalChecker::IncrementalChecker(SimNetwork& net,
                                       std::size_t shard_count)
    : IncrementalChecker(net, shard_count, Options{}) {}

IncrementalChecker::IncrementalChecker(SimNetwork& net,
                                       std::size_t shard_count,
                                       Options options)
    : net_(&net), options_(options) {
  const auto agents = net.agents();
  states_.reserve(agents.size());
  index_.reserve(agents.size());
  for (const auto& agent : agents) {
    auto st = std::make_unique<SwitchState>();
    st->sw = agent->id();
    st->agent = agent.get();
    index_.emplace(st->sw, states_.size());
    states_.push_back(std::move(st));
  }
  shards_.reserve(shard_count == 0 ? 1 : shard_count);
  for (std::size_t s = 0; s < std::max<std::size_t>(1, shard_count); ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = s;
  }
}

IncrementalChecker::~IncrementalChecker() = default;

std::size_t IncrementalChecker::shard_count() const noexcept {
  return shards_.size();
}

std::size_t IncrementalChecker::switch_count() const noexcept {
  return states_.size();
}

void IncrementalChecker::stage(std::span<const StreamEvent> events) {
  for (const auto& st : states_) st->pending.clear();
  if (events.empty()) return;
  for (const StreamEvent& ev : events) {
    switch (ev.type) {
      case StreamEventType::kRuleInstalled:
      case StreamEventType::kRulesRemoved:
      case StreamEventType::kRuleEvicted:
      case StreamEventType::kRuleModified:
      case StreamEventType::kSwitchResynced:
        if (const auto it = index_.find(ev.sw); it != index_.end()) {
          auto& pending = states_[it->second]->pending;
          // Once a shadow-resync marker is staged for a switch, the batch's
          // other deltas for it are superseded: the marker re-collects the
          // final (drain-time) TCAM, and applying a partial post-gap suffix
          // to a pre-gap shadow would corrupt the mirror.
          if (!pending.empty() &&
              pending.back()->type == StreamEventType::kShadowResync) {
            break;
          }
          pending.push_back(&ev);
        }
        break;
      case StreamEventType::kShadowResync:
        if (const auto it = index_.find(ev.sw); it != index_.end()) {
          auto& pending = states_[it->second]->pending;
          if (!pending.empty() &&
              pending.back()->type == StreamEventType::kShadowResync) {
            break;  // one marker per switch per batch is enough
          }
          // Events staged before the marker precede the eviction gap; the
          // re-collect covers them, so they are dropped, not applied.
          pending.clear();
          pending.push_back(&ev);
        }
        break;
      default:
        break;  // control-plane / policy events carry no TCAM delta
    }
  }
}

void IncrementalChecker::recompute_shape(SwitchState& st) {
  st.non_catchall_denies = 0;
  st.max_allow_priority = kNoAllow;
  st.min_deny_priority = kNoDeny;
  for (const TcamRule& r : st.shadow) {
    if (r.action == RuleAction::kAllow) {
      st.max_allow_priority =
          std::max(st.max_allow_priority, std::int64_t{r.priority});
    } else {
      if (!r.wildcard_all()) ++st.non_catchall_denies;
      st.min_deny_priority =
          std::min(st.min_deny_priority, std::int64_t{r.priority});
    }
  }
}

void IncrementalChecker::rebuild_t(SwitchState& st) {
  st.mgr.rollback(st.l_mark);
  st.t_bdd = ruleset_to_bdd(st.mgr, st.shadow);
  st.nodes_at_rebuild = st.mgr.node_count();
  recompute_shape(st);
  st.t_dirty = false;
}

void IncrementalChecker::rebuild_arena(Shard& shard, SwitchState& st,
                                       std::uint64_t epoch) {
  const bool initial = st.epoch == kNoEpoch;
  if (initial) {
    // Prime-time bootstrap: the one TCAM collection the monitor performs.
    // Every later shadow state comes from events alone.
    const auto rules = st.agent->tcam().rules();
    st.shadow.assign(rules.begin(), rules.end());
  }
  st.mgr.rollback(BddManager::Checkpoint{1});
  const auto& logical = net_->controller().compiled().rules_for(st.sw);
  auto& strip = shard.strip_scratch;
  strip.clear();
  strip.reserve(logical.size());
  for (const LogicalRule& lr : logical) strip.push_back(lr.rule);
  st.l_bdd = ruleset_to_bdd(st.mgr, strip);
  st.l_mark = st.mgr.checkpoint();
  rebuild_t(st);
  st.epoch = epoch;
  st.verdict_valid = false;
  if (initial) {
    ++shard.stats.initial_builds;
  } else {
    ++shard.stats.epoch_rebuilds;
    ++shard.stats.full_rebuilds;
    note_rebuild(shard, st, "epoch");
  }
}

void IncrementalChecker::note_rebuild(const Shard& shard,
                                      const SwitchState& st,
                                      const char* reason) {
  SCOUT_DEBUG("stream", "full rebuild (" << reason << ") sw=" << st.sw
                                         << " arena_nodes="
                                         << st.mgr.node_count());
  if (trace_ != nullptr) {
    trace_->instant(shard.index + 1, "full_rebuild", "stream",
                    net_->clock().now(), reason);
  }
}

void IncrementalChecker::apply_event(Shard& shard, SwitchState& st,
                                     const StreamEvent& ev,
                                     bool bdd_current) {
  ++shard.stats.events_applied;
  // Synthesized resync markers are bookkeeping, not fabric activity; the
  // per-switch churn gauges count real TCAM deltas only.
  if (ev.type != StreamEventType::kShadowResync) ++st.churn;
  auto& cube = shard.cube_scratch;
  // The T cube update is worth doing only when the resident T is the
  // current one (no pending arena rebuild) and the ruleset stays in the
  // union-of-allow-cubes shape.
  const auto updatable = [&] {
    return bdd_current && !st.t_dirty && st.cube_safe();
  };
  // Removal update against the checkpointed base: clear the cube, then
  // restore the parts still claimed by overlapping remaining allows
  // (identical duplicate copies included).
  const auto remove_allow_cube = [&](const TcamRule& gone) {
    rule_to_cube_into(cube, gone);
    BddRef t = st.mgr.apply_diff(st.t_bdd, st.mgr.cube(cube));
    for (const TcamRule& r : st.shadow) {
      if (r.action != RuleAction::kAllow || !r.overlaps(gone)) continue;
      rule_to_cube_into(cube, r);
      t = st.mgr.apply_or(t, st.mgr.cube(cube));
    }
    st.t_bdd = t;
    ++shard.stats.incremental_updates;
  };
  const auto note_insert = [&](const TcamRule& r) {
    // Shadow insert mirrors TcamTable::install: before the first strictly
    // greater priority, so equal priorities keep install order.
    const auto pos = std::upper_bound(
        st.shadow.begin(), st.shadow.end(), r,
        [](const TcamRule& a, const TcamRule& b) {
          return a.priority < b.priority;
        });
    st.shadow.insert(pos, r);
    if (r.action == RuleAction::kAllow) {
      st.max_allow_priority =
          std::max(st.max_allow_priority, std::int64_t{r.priority});
    } else {
      if (!r.wildcard_all()) ++st.non_catchall_denies;
      st.min_deny_priority =
          std::min(st.min_deny_priority, std::int64_t{r.priority});
    }
  };

  switch (ev.type) {
    case StreamEventType::kRuleInstalled: {
      note_insert(ev.rule);
      if (updatable()) {
        if (ev.rule.action == RuleAction::kAllow) {
          rule_to_cube_into(cube, ev.rule);
          st.t_bdd = st.mgr.apply_or(st.t_bdd, st.mgr.cube(cube));
          ++shard.stats.incremental_updates;
        }
        // A catch-all deny above every allow adds nothing to the allowed
        // set: T is already exact.
      } else if (bdd_current) {
        st.t_dirty = true;
      }
      st.verdict_valid = false;
      break;
    }
    case StreamEventType::kRulesRemoved: {
      const TcamRule& target = ev.rule;
      // Safety judged on the shape *before* the removal: dropping the last
      // non-catch-all deny makes the post-removal shape look safe, but T
      // was built under first-match semantics and must re-encode.
      const bool was_updatable = updatable();
      std::size_t removed = 0;
      std::size_t denies_removed = 0;
      std::erase_if(st.shadow, [&](const TcamRule& r) {
        if (!r.same_match(target)) return false;
        ++removed;
        if (r.action == RuleAction::kDeny && !r.wildcard_all()) {
          ++denies_removed;
        }
        return true;
      });
      assert(removed == ev.count);
      st.non_catchall_denies -= denies_removed;
      if (removed == 0) break;
      if (was_updatable) {
        // In-shape there are no non-catch-all denies to remove.
        assert(denies_removed == 0);
        if (target.action == RuleAction::kAllow) {
          // All identical-match copies are gone; patch overlaps back in.
          remove_allow_cube(target);
        }
        // Removing a catch-all deny leaves the union unchanged.
      } else if (bdd_current) {
        st.t_dirty = true;
      }
      st.verdict_valid = false;
      break;
    }
    case StreamEventType::kRuleEvicted: {
      // Exactly one copy, bytewise-equal, from the tail of the table.
      const auto it = std::find(st.shadow.rbegin(), st.shadow.rend(),
                                ev.rule);
      if (it == st.shadow.rend()) break;
      st.shadow.erase(std::next(it).base());
      if (ev.rule.action == RuleAction::kDeny && !ev.rule.wildcard_all()) {
        --st.non_catchall_denies;
        if (bdd_current) st.t_dirty = true;
      } else if (updatable()) {
        if (ev.rule.action == RuleAction::kAllow) {
          remove_allow_cube(ev.rule);
        }
      } else if (bdd_current) {
        st.t_dirty = true;
      }
      st.verdict_valid = false;
      break;
    }
    case StreamEventType::kRuleModified: {
      assert(ev.tcam_index < st.shadow.size() &&
             st.shadow[ev.tcam_index] == ev.rule);
      if (ev.tcam_index >= st.shadow.size()) break;
      // In-place rewrite (corruption preserves priority and position).
      st.shadow[ev.tcam_index] = ev.rule_after;
      const bool deny_before =
          ev.rule.action == RuleAction::kDeny && !ev.rule.wildcard_all();
      const bool deny_after = ev.rule_after.action == RuleAction::kDeny &&
                              !ev.rule_after.wildcard_all();
      if (deny_before) --st.non_catchall_denies;
      if (deny_after) ++st.non_catchall_denies;
      if (ev.rule_after.action == RuleAction::kAllow) {
        st.max_allow_priority = std::max(
            st.max_allow_priority, std::int64_t{ev.rule_after.priority});
      } else {
        st.min_deny_priority = std::min(
            st.min_deny_priority, std::int64_t{ev.rule_after.priority});
      }
      if (deny_before || deny_after ||
          ev.rule.action != RuleAction::kAllow ||
          ev.rule_after.action != RuleAction::kAllow) {
        if (bdd_current) st.t_dirty = true;
      } else if (updatable()) {
        // Remove-then-add: the overlap scan runs over the post-replacement
        // shadow, so a surviving identical copy (or the new image itself)
        // restores its share of the removed cube; the final ∨ is
        // idempotent when the scan already covered it.
        remove_allow_cube(ev.rule);
        rule_to_cube_into(cube, ev.rule_after);
        st.t_bdd = st.mgr.apply_or(st.t_bdd, st.mgr.cube(cube));
      } else if (bdd_current) {
        st.t_dirty = true;
      }
      st.verdict_valid = false;
      break;
    }
    case StreamEventType::kSwitchResynced: {
      st.shadow.clear();
      st.non_catchall_denies = 0;
      st.max_allow_priority = kNoAllow;
      st.min_deny_priority = kNoDeny;
      if (bdd_current && !st.t_dirty) {
        st.t_bdd = st.mgr.constant(false);
        ++shard.stats.incremental_updates;
      }
      st.verdict_valid = false;
      break;
    }
    case StreamEventType::kShadowResync: {
      // Ring overflow evicted this switch's events: the event mirror has a
      // gap, so re-collect the TCAM from ground truth — the one post-prime
      // exception to "events are the sole input", taken only while the
      // switch's publisher is quiescent (eviction policy runs in phased
      // mode; the free-running pipeline uses backpressure instead).
      const auto rules = st.agent->tcam().rules();
      st.shadow.assign(rules.begin(), rules.end());
      recompute_shape(st);
      st.resync_pending = true;
      st.verdict_valid = false;
      break;
    }
    default:
      break;
  }
}

void IncrementalChecker::refresh_verdict(Shard& shard, SwitchState& st,
                                         std::uint64_t epoch) {
  if (st.epoch != epoch) {
    rebuild_arena(shard, st, epoch);  // re-encodes T from the shadow too
    st.resync_pending = false;
  } else if (st.resync_pending) {
    rebuild_t(st);
    st.resync_pending = false;
    ++shard.stats.overflow_resyncs;
    ++shard.stats.full_rebuilds;
    note_rebuild(shard, st, "overflow");
    st.verdict_valid = false;
  } else if (st.t_dirty) {
    rebuild_t(st);
    ++shard.stats.unsafe_rebuilds;
    ++shard.stats.full_rebuilds;
    note_rebuild(shard, st, "unsafe");
    st.verdict_valid = false;
  } else if (st.mgr.node_count() >
             static_cast<std::size_t>(
                 options_.divergence_factor *
                 static_cast<double>(st.nodes_at_rebuild)) +
                 options_.divergence_slack) {
    // Compaction: same boolean T, fresh arena — the cached verdict (a
    // function of L, T and the shadow, all unchanged) stays valid.
    rebuild_t(st);
    ++shard.stats.threshold_trips;
    ++shard.stats.full_rebuilds;
    note_rebuild(shard, st, "threshold");
  }
  if (st.verdict_valid) {
    ++shard.stats.verdicts_reused;
    return;
  }
  const auto& logical = net_->controller().compiled().rules_for(st.sw);
  const auto cp = st.mgr.checkpoint();
  if (st.l_bdd == st.t_bdd) {
    st.verdict = CheckResult{};
  } else {
    st.verdict =
        bdd_rule_diff(st.mgr, st.l_bdd, st.t_bdd, logical, st.shadow);
  }
  st.mgr.rollback(cp);  // diff nodes are per-verdict scratch
  st.verdict_valid = true;
  ++shard.stats.diff_recomputes;
}

void IncrementalChecker::process_shard(std::size_t shard_index,
                                       std::uint64_t epoch) {
  SCOUT_CHECK(shard_index < shards_.size(),
              "IncrementalChecker: shard " << shard_index << " of "
                  << shards_.size());
  Shard& shard = *shards_[shard_index];
  SCOUT_CHECK(!shard.in_flight.exchange(true, std::memory_order_acquire),
              "IncrementalChecker: shard " << shard_index
                  << " processed concurrently");
  struct InFlightToken {
    std::atomic<bool>& flag;
    ~InFlightToken() { flag.store(false, std::memory_order_release); }
  } token{shard.in_flight};
  for (std::size_t i = shard_index; i < states_.size();
       i += shards_.size()) {
    SwitchState& st = *states_[i];
    if (st.pending.empty() && st.epoch == epoch && st.verdict_valid) {
      continue;
    }
    // Apply the batch's deltas to the shadow (always) and to T (when the
    // resident T is current); then settle L/T/verdict.
    const bool bdd_current = st.epoch == epoch;
    for (const StreamEvent* ev : st.pending) {
      apply_event(shard, st, *ev, bdd_current);
    }
    st.pending.clear();
    refresh_verdict(shard, st, epoch);
  }
}

FabricCheck IncrementalChecker::compose() const {
  FabricCheck check;
  check.switches_checked = states_.size();
  for (const auto& st : states_) {
    assert(st->verdict_valid);
    if (st->verdict.equivalent) continue;
    check.inconsistent.push_back(st->sw);
    check.missing_rules.insert(check.missing_rules.end(),
                               st->verdict.missing.begin(),
                               st->verdict.missing.end());
    check.extra_rule_count += st->verdict.extra_rules.size();
  }
  return check;
}

std::vector<std::pair<SwitchId, std::uint64_t>>
IncrementalChecker::churn_by_switch() const {
  std::vector<std::pair<SwitchId, std::uint64_t>> out;
  out.reserve(states_.size());
  for (const auto& st : states_) out.emplace_back(st->sw, st->churn);
  return out;
}

BddManager::Stats IncrementalChecker::arena_totals() const {
  BddManager::Stats total;
  double load_sum = 0.0;
  for (const auto& st : states_) {
    const BddManager::Stats s = st->mgr.stats();
    total.nodes += s.nodes;
    total.peak_nodes += s.peak_nodes;
    total.unique_capacity += s.unique_capacity;
    load_sum += s.unique_load;
    total.cache_capacity += s.cache_capacity;
    total.unique_inserts += s.unique_inserts;
    total.cache_lookups += s.cache_lookups;
    total.cache_hits += s.cache_hits;
    total.rollbacks += s.rollbacks;
    total.rollback_floor = std::max(total.rollback_floor, s.rollback_floor);
  }
  total.unique_load = states_.empty()
                          ? 0.0
                          : load_sum / static_cast<double>(states_.size());
  return total;
}

IncrementalChecker::Stats IncrementalChecker::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    const Stats& s = shard->stats;
    total.initial_builds += s.initial_builds;
    total.events_applied += s.events_applied;
    total.incremental_updates += s.incremental_updates;
    total.full_rebuilds += s.full_rebuilds;
    total.epoch_rebuilds += s.epoch_rebuilds;
    total.threshold_trips += s.threshold_trips;
    total.unsafe_rebuilds += s.unsafe_rebuilds;
    total.overflow_resyncs += s.overflow_resyncs;
    total.diff_recomputes += s.diff_recomputes;
    total.verdicts_reused += s.verdicts_reused;
  }
  return total;
}

}  // namespace scout::stream
