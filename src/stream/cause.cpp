#include "src/stream/cause.h"

namespace scout::stream {
namespace {

thread_local CauseId t_current_cause{};

}  // namespace

const char* to_string(CauseEngine e) noexcept {
  switch (e) {
    case CauseEngine::kNone:
      return "none";
    case CauseEngine::kChurnEvict:
      return "churn-evict";
    case CauseEngine::kChurnCorrupt:
      return "churn-corrupt";
    case CauseEngine::kChurnCrash:
      return "churn-crash";
    case CauseEngine::kGray:
      return "gray";
    case CauseEngine::kStorm:
      return "storm";
    case CauseEngine::kObjectFault:
      return "object-fault";
  }
  return "unknown";
}

CauseId current_cause() noexcept { return t_current_cause; }

CauseScope::CauseScope(CauseId cause) noexcept : previous_(t_current_cause) {
  t_current_cause = cause;
}

CauseScope::~CauseScope() { t_current_cause = previous_; }

}  // namespace scout::stream
