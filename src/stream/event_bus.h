// EventBus: the append-only event stream Controller and SwitchAgent
// publish to, and the monitor drains from.
//
// Contract:
//  * Single-threaded use. Network mutations are driven from one thread
//    (the scenario/driver thread); the runtime workers only *read*
//    already-drained batches (spans handed to them by the driver). The bus
//    therefore needs no locking — it is a sequence, not a queue. This is
//    no longer a comment-only promise: every member is
//    SCOUT_GUARDED_BY(serial_), a capability each method acquires, so
//    clang -Wthread-safety proves all access goes through the serial
//    phase, and debug builds bind the phase to the first calling thread
//    and abort if a second thread ever enters (common/mutex.h
//    SerialCapability). Release builds compile the guard to nothing.
//  * Monotone cursors. publish() assigns dense, strictly increasing
//    sequence numbers; events_since(c) returns the events with seq >= c in
//    order. The returned span views bus storage and is invalidated by the
//    next publish() or compact() — consumers drain, then process.
//  * Bounded retention. compact(c) drops events below cursor c (the
//    monitor compacts what it has drained); sequence numbers keep counting
//    from the base offset, so cursors stay valid identities forever.
//  * ChangeLog layering. When bound to the controller's change log, every
//    event is stamped with the log's size at publish time, so two cursors
//    delimit exactly the policy actions recorded between them.
#pragma once

#include <span>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/stream/event.h"

namespace scout {
class ChangeLog;
}  // namespace scout

namespace scout::stream {

class EventBus {
 public:
  using Cursor = std::uint64_t;

  // Stamp subsequent events with `log`'s current size (nullptr unbinds).
  void bind_change_log(const ChangeLog* log) noexcept {
    SerialGuard g{serial_};
    change_log_ = log;
  }

  // Append one event; fills seq, wall and change_log_mark. Returns the
  // assigned sequence number.
  Cursor publish(StreamEvent ev);

  // The next sequence number to be assigned (== one past the last event).
  [[nodiscard]] Cursor cursor() const noexcept {
    SerialGuard g{serial_};
    return cursor_unlocked();
  }

  // Events with seq in [c, cursor()), in sequence order. `c` below the
  // compaction base or ahead of the stream throws (consumer cursor
  // corruption must fail loudly). Valid until the next publish/compact.
  [[nodiscard]] std::span<const StreamEvent> events_since(Cursor c) const;

  // Drop retained events with seq < c (c capped at cursor()).
  void compact(Cursor c);

  [[nodiscard]] std::size_t retained() const noexcept {
    SerialGuard g{serial_};
    return events_.size();
  }
  [[nodiscard]] Cursor base() const noexcept {
    SerialGuard g{serial_};
    return base_;
  }

  // Lifetime counters for the telemetry bridge: totals survive
  // compaction, unlike retained()/base() which describe current storage.
  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t compactions = 0;
    std::uint64_t compacted_events = 0;
  };
  [[nodiscard]] Stats stats() const noexcept {
    SerialGuard g{serial_};
    return stats_;
  }

  // Unbind the debug thread affinity so another thread may take over as
  // the single driver (e.g. a bus built on the main thread, driven from a
  // monitor thread). The handoff itself must provide the happens-before.
  void rebind_serial_owner() noexcept { serial_.rebind(); }

 private:
  [[nodiscard]] Cursor cursor_unlocked() const noexcept
      SCOUT_REQUIRES(serial_) {
    return base_ + events_.size();
  }

  // The serial-phase capability every member is guarded by: "one thread
  // publishes AND drains". Workers never call bus methods — they receive
  // drained spans from the driver.
  mutable SerialCapability serial_{"EventBus"};

  std::vector<StreamEvent> events_ SCOUT_GUARDED_BY(serial_);
  Cursor base_ SCOUT_GUARDED_BY(serial_) = 0;
  const ChangeLog* change_log_ SCOUT_GUARDED_BY(serial_) = nullptr;
  Stats stats_ SCOUT_GUARDED_BY(serial_);
};

// Publisher-side conveniences shared by the instrumented components
// (Controller, SwitchAgent): they hold an optional EventBus* and publish
// only while one is attached.
inline void publish_event(EventBus* bus, StreamEvent ev) {
  if (bus != nullptr) (void)bus->publish(std::move(ev));
}

[[nodiscard]] inline StreamEvent make_switch_event(StreamEventType type,
                                                   SwitchId sw, SimTime now) {
  StreamEvent ev;
  ev.type = type;
  ev.sw = sw;
  ev.time = now;
  return ev;
}

}  // namespace scout::stream
