// EventBus: the append-only event stream Controller and SwitchAgent
// publish to, and the monitor drains from.
//
// Contract:
//  * Single-threaded use. Network mutations are driven from one thread
//    (the scenario/driver thread); the runtime workers only *read*
//    already-drained batches (spans handed to them by the driver). The bus
//    therefore needs no locking — it is a sequence, not a queue. This is
//    no longer a comment-only promise: every member is
//    SCOUT_GUARDED_BY(serial_), a capability each method acquires, so
//    clang -Wthread-safety proves all access goes through the serial
//    phase, and debug builds bind the phase to the first calling thread
//    and abort if a second thread ever enters (common/mutex.h
//    SerialCapability). Release builds compile the guard to nothing.
//  * Monotone cursors. publish() assigns dense, strictly increasing
//    sequence numbers; events_since(c) returns the events with seq >= c in
//    order. The returned span views bus storage and is invalidated by the
//    next publish() or compact() — consumers drain, then process.
//  * Bounded retention. compact(c) drops events below cursor c (the
//    monitor compacts what it has drained); sequence numbers keep counting
//    from the base offset, so cursors stay valid identities forever.
//  * ChangeLog layering. When bound to the controller's change log, every
//    event is stamped with the log's size at publish time, so two cursors
//    delimit exactly the policy actions recorded between them.
//  * Concurrent publish (opt-in). attach_ring() hangs an MpscRing off the
//    bus; a thread holding a ConcurrentPublishCapability has its publish()
//    calls routed (via a thread-local) to its ring shard instead of the
//    serial stream, so the instrumented components (Controller,
//    SwitchAgent) need no changes and the serial contract above stays
//    statically checked for everything else. ingest_ring() — a serial-phase
//    call — folds the shards back into the stream, assigning dense seq at
//    ingest and synthesizing kShadowResync events for switches the ring
//    evicted from (see mpsc_ring.h for the backpressure story).
//  * Multi-reader compaction boundary. Sharded consumers register one
//    reader cursor each; compact(c) clamps to the laggiest registered
//    reader, so no event is reclaimed while any shard cursor precedes it.
//    With no readers registered the single-cursor behavior is unchanged.
#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "src/common/check.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/stream/event.h"
#include "src/stream/mpsc_ring.h"

namespace scout {
class ChangeLog;
}  // namespace scout

namespace scout::stream {

class EventBus {
 public:
  using Cursor = std::uint64_t;

  // Stamp subsequent events with `log`'s current size (nullptr unbinds).
  void bind_change_log(const ChangeLog* log) noexcept {
    SerialGuard g{serial_};
    change_log_ = log;
  }

  // Append one event; fills seq, wall and change_log_mark. Returns the
  // assigned sequence number. On a thread holding a
  // ConcurrentPublishCapability for this bus, the event goes to that
  // thread's ring shard instead (seq assigned later, at ingest) and 0 is
  // returned — publishers never observe sequence numbers.
  Cursor publish(StreamEvent ev);

  // The next sequence number to be assigned (== one past the last event).
  [[nodiscard]] Cursor cursor() const noexcept {
    SerialGuard g{serial_};
    return cursor_unlocked();
  }

  // Events with seq in [c, cursor()), in sequence order. `c` below the
  // compaction base or ahead of the stream throws (consumer cursor
  // corruption must fail loudly). Valid until the next publish/compact.
  [[nodiscard]] std::span<const StreamEvent> events_since(Cursor c) const;

  // Drop retained events with seq < c — c is capped at cursor() and
  // clamped to the minimum registered reader cursor (compaction_floor()),
  // so lagging sharded readers pin retention.
  void compact(Cursor c);

  [[nodiscard]] std::size_t retained() const noexcept {
    SerialGuard g{serial_};
    return events_.size();
  }
  [[nodiscard]] Cursor base() const noexcept {
    SerialGuard g{serial_};
    return base_;
  }

  // Lifetime counters for the telemetry bridge: totals survive
  // compaction, unlike retained()/base() which describe current storage.
  // `published` counts every event entering the serial stream (serial
  // publishes + ring ingests + synthesized resyncs); `ingested` and
  // `resyncs_synthesized` break out the ring-fed portions.
  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t compactions = 0;
    std::uint64_t compacted_events = 0;
    std::uint64_t ingested = 0;
    std::uint64_t resyncs_synthesized = 0;
  };
  [[nodiscard]] Stats stats() const noexcept {
    SerialGuard g{serial_};
    return stats_;
  }

  // Unbind the debug thread affinity so another thread may take over as
  // the single driver (e.g. a bus built on the main thread, driven from a
  // monitor thread). The handoff itself must provide the happens-before.
  void rebind_serial_owner() noexcept { serial_.rebind(); }

  // -- Concurrent publish (MPSC ring) ----------------------------------------

  // Serial-phase: attach (nullptr: detach) the ring concurrent publishers
  // route through. The ring must outlive its attachment.
  void attach_ring(MpscRing* ring);
  [[nodiscard]] MpscRing* ring() const noexcept {
    return ring_.load(std::memory_order_acquire);
  }

  // RAII concurrent-publish registration: while alive, the constructing
  // thread's publish() calls on this bus append to ring shard `pub`
  // instead of the serial stream. One live capability per shard (the ring
  // aborts on double claims); drop it before the next serial phase touches
  // the shard. This is the statically-visible relaxation of the serial
  // contract: components keep calling the same publish_event() helpers,
  // only threads that explicitly hold the capability ever leave the
  // serial path.
  class ConcurrentPublishCapability {
   public:
    ConcurrentPublishCapability(EventBus& bus, std::size_t pub);
    ~ConcurrentPublishCapability();
    ConcurrentPublishCapability(const ConcurrentPublishCapability&) = delete;
    ConcurrentPublishCapability& operator=(const ConcurrentPublishCapability&) =
        delete;

   private:
    MpscRing* ring_;
    std::size_t pub_;
  };

  // Serial-phase: fold every ring shard into the stream — shards in index
  // order, each shard oldest-first — assigning dense seq at ingest while
  // preserving the publish-time time/wall/change_log_mark stamps, then
  // append one kShadowResync event per switch the ring evicted from.
  // Returns events ingested (synthesized resyncs included). No-op without
  // an attached ring.
  std::size_t ingest_ring();

  // Serial-phase: restamp the ring's change-log mark from the bound log.
  // Call at the start of a concurrent phase, after any serial log writes.
  void refresh_ring_mark();

  // -- Multi-reader compaction boundary --------------------------------------
  //
  // Sharded consumers register one reader each; compact(c) then clamps to
  // the minimum registered reader cursor, so no event is reclaimed while
  // any shard cursor precedes it. Readers start at the current cursor and
  // must advance monotonically, never past the stream head.
  using ReaderId = std::size_t;
  [[nodiscard]] ReaderId register_reader();
  void advance_reader(ReaderId id, Cursor c);
  [[nodiscard]] Cursor reader_cursor(ReaderId id) const;
  // min over registered reader cursors; cursor() when none registered.
  [[nodiscard]] Cursor compaction_floor() const;

 private:
  Cursor publish_serial(StreamEvent ev);

  // Thread-local publish routing, managed by ConcurrentPublishCapability.
  static void route_thread(const EventBus* bus, MpscRing* ring,
                           std::size_t pub) noexcept;

  [[nodiscard]] Cursor cursor_unlocked() const noexcept
      SCOUT_REQUIRES(serial_) {
    return base_ + events_.size();
  }

  // The serial-phase capability every member is guarded by: "one thread
  // publishes AND drains". Workers never call bus methods — they receive
  // drained spans from the driver.
  mutable SerialCapability serial_{"EventBus"};

  std::vector<StreamEvent> events_ SCOUT_GUARDED_BY(serial_);
  Cursor base_ SCOUT_GUARDED_BY(serial_) = 0;
  const ChangeLog* change_log_ SCOUT_GUARDED_BY(serial_) = nullptr;
  Stats stats_ SCOUT_GUARDED_BY(serial_);
  // Registered reader cursors (compaction clamps to their minimum).
  std::vector<Cursor> readers_ SCOUT_GUARDED_BY(serial_);
  // Attached by the serial phase, read by publisher threads entering a
  // ConcurrentPublishCapability — hence atomic, not serial-guarded.
  std::atomic<MpscRing*> ring_{nullptr};
};

// Publisher-side conveniences shared by the instrumented components
// (Controller, SwitchAgent): they hold an optional EventBus* and publish
// only while one is attached.
inline void publish_event(EventBus* bus, StreamEvent ev) {
  if (bus != nullptr) (void)bus->publish(std::move(ev));
}

[[nodiscard]] inline StreamEvent make_switch_event(StreamEventType type,
                                                   SwitchId sw, SimTime now) {
  StreamEvent ev;
  ev.type = type;
  ev.sw = sw;
  ev.time = now;
  return ev;
}

}  // namespace scout::stream
