// EventBus: the append-only event stream Controller and SwitchAgent
// publish to, and the monitor drains from.
//
// Contract:
//  * Single-threaded publication. Network mutations are driven from one
//    thread (the scenario/driver thread); the runtime workers only *read*
//    already-drained batches. The bus therefore needs no locking — it is a
//    sequence, not a queue.
//  * Monotone cursors. publish() assigns dense, strictly increasing
//    sequence numbers; events_since(c) returns the events with seq >= c in
//    order. The returned span views bus storage and is invalidated by the
//    next publish() or compact() — consumers drain, then process.
//  * Bounded retention. compact(c) drops events below cursor c (the
//    monitor compacts what it has drained); sequence numbers keep counting
//    from the base offset, so cursors stay valid identities forever.
//  * ChangeLog layering. When bound to the controller's change log, every
//    event is stamped with the log's size at publish time, so two cursors
//    delimit exactly the policy actions recorded between them.
#pragma once

#include <span>
#include <vector>

#include "src/stream/event.h"

namespace scout {
class ChangeLog;
}  // namespace scout

namespace scout::stream {

class EventBus {
 public:
  using Cursor = std::uint64_t;

  // Stamp subsequent events with `log`'s current size (nullptr unbinds).
  void bind_change_log(const ChangeLog* log) noexcept { change_log_ = log; }

  // Append one event; fills seq, wall and change_log_mark. Returns the
  // assigned sequence number.
  Cursor publish(StreamEvent ev);

  // The next sequence number to be assigned (== one past the last event).
  [[nodiscard]] Cursor cursor() const noexcept {
    return base_ + events_.size();
  }

  // Events with seq in [c, cursor()), in sequence order. `c` below the
  // compaction base or ahead of the stream throws (consumer cursor
  // corruption must fail loudly). Valid until the next publish/compact.
  [[nodiscard]] std::span<const StreamEvent> events_since(Cursor c) const;

  // Drop retained events with seq < c (c capped at cursor()).
  void compact(Cursor c);

  [[nodiscard]] std::size_t retained() const noexcept {
    return events_.size();
  }
  [[nodiscard]] Cursor base() const noexcept { return base_; }

  // Lifetime counters for the telemetry bridge: totals survive
  // compaction, unlike retained()/base() which describe current storage.
  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t compactions = 0;
    std::uint64_t compacted_events = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  std::vector<StreamEvent> events_;  // events_[i].seq == base_ + i
  Cursor base_ = 0;
  const ChangeLog* change_log_ = nullptr;
  Stats stats_;
};

// Publisher-side conveniences shared by the instrumented components
// (Controller, SwitchAgent): they hold an optional EventBus* and publish
// only while one is attached.
inline void publish_event(EventBus* bus, StreamEvent ev) {
  if (bus != nullptr) (void)bus->publish(std::move(ev));
}

[[nodiscard]] inline StreamEvent make_switch_event(StreamEventType type,
                                                   SwitchId sw, SimTime now) {
  StreamEvent ev;
  ev.type = type;
  ev.sw = sw;
  ev.time = now;
  return ev;
}

}  // namespace scout::stream
