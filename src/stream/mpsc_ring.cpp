#include "src/stream/mpsc_ring.h"

#include <algorithm>

namespace scout::stream {
namespace {

std::uint64_t round_up_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

MpscRing::MpscRing(std::size_t publishers, std::size_t switch_id_bound)
    : MpscRing(publishers, switch_id_bound, Options{}) {}

MpscRing::MpscRing(std::size_t publishers, std::size_t switch_id_bound,
                   Options options)
    : options_(options), evicted_(switch_id_bound) {
  SCOUT_CHECK(publishers > 0, "MpscRing: at least one publisher shard");
  const std::uint64_t capacity =
      round_up_pow2(std::max<std::uint64_t>(2, options_.shard_capacity));
  mask_ = capacity - 1;
  shards_.reserve(publishers);
  for (std::size_t p = 0; p < publishers; ++p) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->slots.resize(capacity);
  }
}

MpscRing::~MpscRing() {
  // Safe teardown under in-flight publishers: close() flips any blocked
  // kBackpressure spinner onto the eviction path, then we wait for every
  // claim to be released so no publisher thread can still touch a shard.
  close();
  while (live_publishers_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

void MpscRing::claim(std::size_t pub) {
  Shard& s = shard(pub);
  SCOUT_CHECK(!s.claimed.exchange(true, std::memory_order_acq_rel),
              "MpscRing: shard " << pub
                  << " already has a live publisher registration");
  live_publishers_.fetch_add(1, std::memory_order_acq_rel);
}

void MpscRing::release(std::size_t pub) noexcept {
  Shard& s = shard(pub);
  s.claimed.store(false, std::memory_order_release);
  live_publishers_.fetch_sub(1, std::memory_order_acq_rel);
}

void MpscRing::mark_eviction(Shard& s, SwitchId sw) {
  s.evictions.fetch_add(1, std::memory_order_relaxed);
  if (sw.valid() && sw.value() < evicted_.size()) {
    evicted_[sw.value()].store(1, std::memory_order_release);
  } else {
    fabric_wide_eviction_.store(true, std::memory_order_release);
  }
}

bool MpscRing::publish(std::size_t pub, const StreamEvent& ev) {
  Shard& s = shard(pub);
  const std::uint64_t capacity = mask_ + 1;
  bool stalled = false;
  for (;;) {
    if (closed_.load(std::memory_order_acquire)) {
      mark_eviction(s, ev.sw);
      return false;
    }
    const std::uint64_t tail = s.tail.load(std::memory_order_relaxed);
    const std::uint64_t head = s.head.load(std::memory_order_acquire);
    const std::uint64_t occupancy = tail - head;
    if (occupancy < capacity) {
      s.slots[tail & mask_] = ev;
      s.tail.store(tail + 1, std::memory_order_release);
      if (occupancy + 1 > s.high_water.load(std::memory_order_relaxed)) {
        s.high_water.store(occupancy + 1, std::memory_order_relaxed);
      }
      return true;
    }
    if (!stalled) {
      stalled = true;
      s.full_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    if (options_.on_full == FullPolicy::kEvictToResync) {
      mark_eviction(s, ev.sw);
      return false;
    }
    std::this_thread::yield();
  }
}

bool MpscRing::take_evictions(std::vector<SwitchId>& out) {
  for (std::size_t i = 0; i < evicted_.size(); ++i) {
    if (evicted_[i].exchange(0, std::memory_order_acq_rel) != 0) {
      out.push_back(SwitchId{static_cast<SwitchId::value_type>(i)});
    }
  }
  return fabric_wide_eviction_.exchange(false, std::memory_order_acq_rel);
}

std::size_t MpscRing::occupancy() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    total += static_cast<std::size_t>(s->tail.load(std::memory_order_acquire) -
                                      s->head.load(std::memory_order_acquire));
  }
  return total;
}

std::uint64_t MpscRing::high_water() const {
  std::uint64_t hw = 0;
  for (const auto& s : shards_) {
    hw = std::max(hw, s->high_water.load(std::memory_order_acquire));
  }
  return hw;
}

MpscRing::Stats MpscRing::stats() const {
  Stats total;
  for (const auto& s : shards_) {
    total.published += s->tail.load(std::memory_order_acquire);
    total.drained += s->drained.load(std::memory_order_acquire);
    total.evictions += s->evictions.load(std::memory_order_acquire);
    total.full_stalls += s->full_stalls.load(std::memory_order_acquire);
  }
  return total;
}

}  // namespace scout::stream
