#include "src/stream/churn_generator.h"

#include <algorithm>

namespace scout::stream {
namespace {

bool contains(const std::vector<SwitchId>& v, SwitchId sw) {
  return std::find(v.begin(), v.end(), sw) != v.end();
}

void erase_one(std::vector<SwitchId>& v, SwitchId sw) {
  const auto it = std::find(v.begin(), v.end(), sw);
  if (it != v.end()) v.erase(it);
}

}  // namespace

ChurnGenerator::ChurnGenerator(SimNetwork& net, EventBus& bus,
                               std::uint64_t seed, ChurnMix mix)
    : net_(&net), bus_(&bus), rng_(seed), mix_(mix) {}

SwitchAgent& ChurnGenerator::agent_at(std::size_t index) {
  return *net_->agents()[index].get();
}

SwitchAgent* ChurnGenerator::healthy_agent() {
  const auto agents = net_->agents();
  if (agents.empty()) return nullptr;
  // Bounded random probing keeps the draw count deterministic-ish cheap;
  // fall back to a scan so "one healthy switch left" still terminates.
  for (int tries = 0; tries < 8; ++tries) {
    SwitchAgent& a = agent_at(rng_.below(agents.size()));
    if (!a.crashed() && !contains(disconnected_, a.id())) return &a;
  }
  for (const auto& a : agents) {
    if (!a->crashed() && !contains(disconnected_, a->id())) return a.get();
  }
  return nullptr;
}

std::size_t ChurnGenerator::pump(std::size_t ops, bool allow_valve) {
  const EventBus::Cursor start = bus_->cursor();
  for (std::size_t i = 0; i < ops; ++i) {
    step();
    ++ops_;
  }
  if (allow_valve && bus_->cursor() == start) {
    // Degenerate-network valve: force repair churn (a resync always
    // republishes something on a deployed fabric) before reporting a
    // silent interval.
    if (SwitchAgent* a = healthy_agent()) {
      (void)net_->controller().resync_switch(a->id());
      ++ops_;
    }
  }
  return bus_->cursor() - start;
}

void ChurnGenerator::step() {
  Controller& controller = net_->controller();
  const auto agents = net_->agents();
  if (agents.empty()) return;
  net_->clock().advance(rng_.between(1, 40));
  const SimTime now = net_->clock().now();

  const double weights[] = {mix_.evict,   mix_.corrupt,       mix_.resync,
                            mix_.crash,   mix_.recover,       mix_.channel_flap,
                            mix_.benign_change, mix_.migrate};
  double total = 0.0;
  for (const double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return;
  double draw = rng_.uniform() * total;
  std::size_t op = 0;
  for (; op + 1 < std::size(weights); ++op) {
    draw -= std::max(0.0, weights[op]);
    if (draw < 0.0) break;
  }

  switch (op) {
    case 0: {  // evict
      SwitchAgent& a = agent_at(rng_.below(agents.size()));
      const CauseId cause =
          CauseId::make(CauseEngine::kChurnEvict, ++cause_ordinal_);
      CauseScope scope{cause};
      if (a.evict_rules(1 + rng_.below(3), now) > 0 && ledger_ != nullptr) {
        ledger_->record(cause, a.id(), now);
      }
      break;
    }
    case 1: {  // corrupt
      SwitchAgent& a = agent_at(rng_.below(agents.size()));
      const CauseId cause =
          CauseId::make(CauseEngine::kChurnCorrupt, ++cause_ordinal_);
      CauseScope scope{cause};
      const auto corruption =
          a.corrupt_tcam_bit(rng_, now, /*detection_probability=*/0.5);
      if (corruption.has_value() && ledger_ != nullptr) {
        ledger_->record(cause, a.id(), now);
      }
      break;
    }
    case 2: {  // resync (repair churn on a healthy switch)
      if (SwitchAgent* a = healthy_agent()) {
        (void)controller.resync_switch(a->id());
      }
      break;
    }
    case 3: {  // crash mid-resync: the §V-B hard case, switch ends wiped
      SwitchAgent* a = healthy_agent();
      if (a == nullptr) break;
      const CauseId cause =
          CauseId::make(CauseEngine::kChurnCrash, ++cause_ordinal_);
      CauseScope scope{cause};
      a->crash_after(0);
      crashed_.push_back(a->id());
      (void)controller.resync_switch(a->id());
      if (ledger_ != nullptr) ledger_->record(cause, a->id(), now);
      break;
    }
    case 4: {  // recover a crashed agent and resync it clean
      if (crashed_.empty()) break;
      const SwitchId sw = crashed_[rng_.below(crashed_.size())];
      net_->agent(sw).recover(now);
      erase_one(crashed_, sw);
      (void)controller.resync_switch(sw);
      break;
    }
    case 5: {  // channel flap: down now, up + resync on a later flap
      if (!disconnected_.empty() && rng_.chance(0.6)) {
        const SwitchId sw =
            disconnected_[rng_.below(disconnected_.size())];
        controller.reconnect_switch(sw);
        erase_one(disconnected_, sw);
        (void)controller.resync_switch(sw);
      } else if (SwitchAgent* a = healthy_agent()) {
        controller.disconnect_switch(a->id());
        disconnected_.push_back(a->id());
      }
      break;
    }
    case 6: {  // benign change-log noise
      const NetworkPolicy& policy = controller.policy();
      const std::size_t kind = rng_.below(3);
      if (kind == 0 && !policy.filters().empty()) {
        controller.record_benign_change(ObjectRef::of(
            policy.filters()[rng_.below(policy.filters().size())].id));
      } else if (kind == 1 && !policy.contracts().empty()) {
        controller.record_benign_change(ObjectRef::of(
            policy.contracts()[rng_.below(policy.contracts().size())].id));
      } else if (!policy.epgs().empty()) {
        controller.record_benign_change(ObjectRef::of(
            policy.epgs()[rng_.below(policy.epgs().size())].id));
      }
      break;
    }
    case 7: {  // endpoint migration: recompile (epoch bump) + two resyncs
      const NetworkPolicy& policy = controller.policy();
      if (policy.endpoints().empty()) break;
      const EndpointId ep =
          policy.endpoints()[rng_.below(policy.endpoints().size())].id;
      SwitchAgent* to = healthy_agent();
      if (to == nullptr) break;
      (void)controller.migrate_endpoint(ep, to->id());
      break;
    }
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// ConcurrentChurnDriver

namespace {

// Control tail runs the policy/repair ops only; evict and corrupt belong
// to the concurrent data phase.
ChurnMix control_tail_mix(ChurnMix mix) {
  mix.evict = 0.0;
  mix.corrupt = 0.0;
  return mix;
}

}  // namespace

ConcurrentChurnDriver::ConcurrentChurnDriver(SimNetwork& net, EventBus& bus,
                                             std::uint64_t seed)
    : ConcurrentChurnDriver(net, bus, seed, Options{}) {}

ConcurrentChurnDriver::ConcurrentChurnDriver(SimNetwork& net, EventBus& bus,
                                             std::uint64_t seed,
                                             Options options)
    : net_(&net),
      bus_(&bus),
      options_(options),
      schedule_seed_(derive_seed(seed, 0)),
      control_(net, bus, derive_seed(seed, 1),
               control_tail_mix(options.mix)) {
  SCOUT_CHECK(options_.publishers > 0,
              "ConcurrentChurnDriver: at least one publisher");
  if (options_.use_ring) {
    SCOUT_CHECK(bus_->ring() != nullptr,
                "ConcurrentChurnDriver: use_ring requires an attached ring");
    SCOUT_CHECK(bus_->ring()->publishers() >= options_.publishers,
                "ConcurrentChurnDriver: ring has "
                    << bus_->ring()->publishers() << " shards, need "
                    << options_.publishers);
    workers_.reserve(options_.publishers);
    for (std::size_t p = 0; p < options_.publishers; ++p) {
      workers_.emplace_back([this, p] { worker_main(p); });
    }
  }
}

ConcurrentChurnDriver::~ConcurrentChurnDriver() {
  stop_requested_.store(true, std::memory_order_release);
  {
    MutexLock l{mu_};
    shutdown_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

void ConcurrentChurnDriver::make_schedule(std::size_t data_ops) {
  SCOUT_DCHECK(schedule_folded_,
               "ConcurrentChurnDriver: previous generation's truths "
               "not folded before rescheduling");
  schedule_.clear();
  schedule_mutated_.clear();
  const auto agents = net_->agents();
  if (agents.empty() || data_ops == 0) return;
  schedule_.reserve(data_ops);
  const std::uint64_t interval_seed = derive_seed(schedule_seed_, interval_);
  ++interval_;
  const double evict_w = std::max(0.0, options_.mix.evict);
  const double corrupt_w = std::max(0.0, options_.mix.corrupt);
  const double total = evict_w + corrupt_w;
  for (std::size_t i = 0; i < data_ops; ++i) {
    // One private rng per op, derived from (interval, op index) — no
    // shared stream for publisher threads to race on, and no dependence
    // on who executes the op when.
    Rng op_rng{derive_seed(interval_seed, i)};
    net_->clock().advance(op_rng.between(1, 40));
    DataOp op;
    op.agent_index = op_rng.below(agents.size());
    op.kind = (total <= 0.0 || op_rng.uniform() * total < evict_w)
                  ? DataOp::Kind::kEvict
                  : DataOp::Kind::kCorrupt;
    op.rng_seed = op_rng();
    op.time = net_->clock().now();
    op.cause = CauseId::make(op.kind == DataOp::Kind::kEvict
                                 ? CauseEngine::kChurnEvict
                                 : CauseEngine::kChurnCorrupt,
                             ++data_cause_ordinal_);
    schedule_.push_back(op);
  }
  schedule_mutated_.assign(schedule_.size(), 0);
  schedule_folded_ = false;
}

bool ConcurrentChurnDriver::run_op(const DataOp& op) {
  SwitchAgent& a = *net_->agents()[op.agent_index];
  Rng rng{op.rng_seed};
  CauseScope scope{op.cause};
  if (op.kind == DataOp::Kind::kEvict) {
    return a.evict_rules(1 + rng.below(3), op.time) > 0;
  }
  return a.corrupt_tcam_bit(rng, op.time, /*detection_probability=*/0.5)
      .has_value();
}

void ConcurrentChurnDriver::fold_schedule_truths() {
  if (schedule_folded_) return;
  schedule_folded_ = true;
  if (ledger_ == nullptr) return;
  const auto agents = net_->agents();
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    if (schedule_mutated_[i] == 0) continue;
    const DataOp& op = schedule_[i];
    ledger_->record(op.cause, agents[op.agent_index]->id(), op.time);
  }
}

void ConcurrentChurnDriver::dispatch(bool wait_done) {
  MutexLock l{mu_};
  SCOUT_CHECK(pending_workers_ == 0,
              "ConcurrentChurnDriver: generation already in flight");
  pending_workers_ = workers_.size();
  ++generation_;
  work_cv_.notify_all();
  while (wait_done && pending_workers_ != 0) done_cv_.wait(mu_);
}

void ConcurrentChurnDriver::worker_main(std::size_t pub) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      MutexLock l{mu_};
      while (generation_ == seen && !shutdown_) work_cv_.wait(mu_);
      if (shutdown_) return;
      seen = generation_;
    }
    {
      // Claim the shard + route this thread's publishes into it for the
      // duration of the generation.
      EventBus::ConcurrentPublishCapability cap{*bus_, pub};
      for (std::size_t i = 0; i < schedule_.size(); ++i) {
        const DataOp& op = schedule_[i];
        if (op.agent_index % options_.publishers != pub) continue;
        if (stop_requested_.load(std::memory_order_acquire)) break;
        if (run_op(op)) schedule_mutated_[i] = 1;
        executed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    {
      MutexLock l{mu_};
      if (--pending_workers_ == 0) done_cv_.notify_all();
    }
  }
}

std::size_t ConcurrentChurnDriver::pump(std::size_t ops) {
  const EventBus::Cursor start = bus_->cursor();
  std::size_t control_ops =
      ops == 0 ? 0
               : std::max<std::size_t>(
                     1, static_cast<std::size_t>(
                            static_cast<double>(ops) *
                            options_.control_fraction));
  control_ops = std::min(control_ops, ops);
  make_schedule(ops - control_ops);
  if (!schedule_.empty()) {
    if (!workers_.empty()) {
      dispatch(/*wait_done=*/true);
    } else {
      for (std::size_t i = 0; i < schedule_.size(); ++i) {
        if (run_op(schedule_[i])) schedule_mutated_[i] = 1;
      }
      executed_.fetch_add(schedule_.size(), std::memory_order_relaxed);
    }
  }
  fold_schedule_truths();
  if (bus_->ring() != nullptr) (void)bus_->ingest_ring();
  if (control_ops > 0) (void)control_.pump(control_ops, /*allow_valve=*/false);
  return bus_->cursor() - start;
}

std::size_t ConcurrentChurnDriver::pump_control(std::size_t ops) {
  // Documented precondition: called at publisher quiescence, which is
  // also the first serial point where a pipelined segment's truths can
  // be folded.
  fold_schedule_truths();
  if (ops == 0) return 0;
  const std::size_t control_ops = std::min(
      ops, std::max<std::size_t>(
               1, static_cast<std::size_t>(static_cast<double>(ops) *
                                           options_.control_fraction)));
  return control_.pump(control_ops, /*allow_valve=*/false);
}

void ConcurrentChurnDriver::start(std::size_t total_ops) {
  SCOUT_CHECK(!workers_.empty(),
              "ConcurrentChurnDriver::start: pipelined mode needs use_ring");
  stop_requested_.store(false, std::memory_order_release);
  make_schedule(total_ops);
  if (!schedule_.empty()) dispatch(/*wait_done=*/false);
}

bool ConcurrentChurnDriver::producing() const {
  MutexLock l{mu_};
  return pending_workers_ != 0;
}

void ConcurrentChurnDriver::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (MpscRing* ring = bus_->ring()) ring->close();
  {
    MutexLock l{mu_};
    while (pending_workers_ != 0) done_cv_.wait(mu_);
  }
  fold_schedule_truths();
}

std::size_t ConcurrentChurnDriver::ops_applied() const noexcept {
  return control_.ops_applied() +
         executed_.load(std::memory_order_acquire);
}

}  // namespace scout::stream
