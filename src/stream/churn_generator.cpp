#include "src/stream/churn_generator.h"

#include <algorithm>

namespace scout::stream {
namespace {

bool contains(const std::vector<SwitchId>& v, SwitchId sw) {
  return std::find(v.begin(), v.end(), sw) != v.end();
}

void erase_one(std::vector<SwitchId>& v, SwitchId sw) {
  const auto it = std::find(v.begin(), v.end(), sw);
  if (it != v.end()) v.erase(it);
}

}  // namespace

ChurnGenerator::ChurnGenerator(SimNetwork& net, EventBus& bus,
                               std::uint64_t seed, ChurnMix mix)
    : net_(&net), bus_(&bus), rng_(seed), mix_(mix) {}

SwitchAgent& ChurnGenerator::agent_at(std::size_t index) {
  return *net_->agents()[index].get();
}

SwitchAgent* ChurnGenerator::healthy_agent() {
  const auto agents = net_->agents();
  if (agents.empty()) return nullptr;
  // Bounded random probing keeps the draw count deterministic-ish cheap;
  // fall back to a scan so "one healthy switch left" still terminates.
  for (int tries = 0; tries < 8; ++tries) {
    SwitchAgent& a = agent_at(rng_.below(agents.size()));
    if (!a.crashed() && !contains(disconnected_, a.id())) return &a;
  }
  for (const auto& a : agents) {
    if (!a->crashed() && !contains(disconnected_, a->id())) return a.get();
  }
  return nullptr;
}

std::size_t ChurnGenerator::pump(std::size_t ops) {
  const EventBus::Cursor start = bus_->cursor();
  for (std::size_t i = 0; i < ops; ++i) {
    step();
    ++ops_;
  }
  if (bus_->cursor() == start) {
    // Degenerate-network valve: force repair churn (a resync always
    // republishes something on a deployed fabric) before reporting a
    // silent interval.
    if (SwitchAgent* a = healthy_agent()) {
      (void)net_->controller().resync_switch(a->id());
      ++ops_;
    }
  }
  return bus_->cursor() - start;
}

void ChurnGenerator::step() {
  Controller& controller = net_->controller();
  const auto agents = net_->agents();
  if (agents.empty()) return;
  net_->clock().advance(rng_.between(1, 40));
  const SimTime now = net_->clock().now();

  const double weights[] = {mix_.evict,   mix_.corrupt,       mix_.resync,
                            mix_.crash,   mix_.recover,       mix_.channel_flap,
                            mix_.benign_change, mix_.migrate};
  double total = 0.0;
  for (const double w : weights) total += std::max(0.0, w);
  if (total <= 0.0) return;
  double draw = rng_.uniform() * total;
  std::size_t op = 0;
  for (; op + 1 < std::size(weights); ++op) {
    draw -= std::max(0.0, weights[op]);
    if (draw < 0.0) break;
  }

  switch (op) {
    case 0: {  // evict
      SwitchAgent& a = agent_at(rng_.below(agents.size()));
      (void)a.evict_rules(1 + rng_.below(3), now);
      break;
    }
    case 1: {  // corrupt
      SwitchAgent& a = agent_at(rng_.below(agents.size()));
      (void)a.corrupt_tcam_bit(rng_, now, /*detection_probability=*/0.5);
      break;
    }
    case 2: {  // resync (repair churn on a healthy switch)
      if (SwitchAgent* a = healthy_agent()) {
        (void)controller.resync_switch(a->id());
      }
      break;
    }
    case 3: {  // crash mid-resync: the §V-B hard case, switch ends wiped
      SwitchAgent* a = healthy_agent();
      if (a == nullptr) break;
      a->crash_after(0);
      crashed_.push_back(a->id());
      (void)controller.resync_switch(a->id());
      break;
    }
    case 4: {  // recover a crashed agent and resync it clean
      if (crashed_.empty()) break;
      const SwitchId sw = crashed_[rng_.below(crashed_.size())];
      net_->agent(sw).recover(now);
      erase_one(crashed_, sw);
      (void)controller.resync_switch(sw);
      break;
    }
    case 5: {  // channel flap: down now, up + resync on a later flap
      if (!disconnected_.empty() && rng_.chance(0.6)) {
        const SwitchId sw =
            disconnected_[rng_.below(disconnected_.size())];
        controller.reconnect_switch(sw);
        erase_one(disconnected_, sw);
        (void)controller.resync_switch(sw);
      } else if (SwitchAgent* a = healthy_agent()) {
        controller.disconnect_switch(a->id());
        disconnected_.push_back(a->id());
      }
      break;
    }
    case 6: {  // benign change-log noise
      const NetworkPolicy& policy = controller.policy();
      const std::size_t kind = rng_.below(3);
      if (kind == 0 && !policy.filters().empty()) {
        controller.record_benign_change(ObjectRef::of(
            policy.filters()[rng_.below(policy.filters().size())].id));
      } else if (kind == 1 && !policy.contracts().empty()) {
        controller.record_benign_change(ObjectRef::of(
            policy.contracts()[rng_.below(policy.contracts().size())].id));
      } else if (!policy.epgs().empty()) {
        controller.record_benign_change(ObjectRef::of(
            policy.epgs()[rng_.below(policy.epgs().size())].id));
      }
      break;
    }
    case 7: {  // endpoint migration: recompile (epoch bump) + two resyncs
      const NetworkPolicy& policy = controller.policy();
      if (policy.endpoints().empty()) break;
      const EndpointId ep =
          policy.endpoints()[rng_.below(policy.endpoints().size())].id;
      SwitchAgent* to = healthy_agent();
      if (to == nullptr) break;
      (void)controller.migrate_endpoint(ep, to->id());
      break;
    }
    default:
      break;
  }
}

}  // namespace scout::stream
