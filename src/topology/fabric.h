// Physical fabric model: the set of switches endpoints attach to, and the
// controller-to-switch control channel state. The paper's cluster is ~30
// Nexus 9000 leaf switches under one APIC; the scalability experiment grows
// the leaf count to 500. Spines are modelled for topological completeness
// but carry no policy TCAM state (ACL rules live on leaves, where endpoints
// attach).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/sim_clock.h"

namespace scout {

enum class SwitchRole : std::uint8_t { kLeaf, kSpine };

struct SwitchInfo {
  SwitchId id;
  std::string name;
  SwitchRole role = SwitchRole::kLeaf;
  std::size_t tcam_capacity = 4096;  // ACL TCAM entries
};

class Fabric {
 public:
  SwitchId add_switch(std::string name, SwitchRole role = SwitchRole::kLeaf,
                      std::size_t tcam_capacity = 4096);

  [[nodiscard]] const SwitchInfo& info(SwitchId id) const;
  [[nodiscard]] std::span<const SwitchInfo> switches() const noexcept {
    return switches_;
  }
  [[nodiscard]] std::vector<SwitchId> leaves() const;
  [[nodiscard]] std::size_t size() const noexcept { return switches_.size(); }

  // Convenience factory: `n_leaves` leaves + `n_spines` spines.
  static Fabric leaf_spine(std::size_t n_leaves, std::size_t n_spines,
                           std::size_t tcam_capacity = 4096);

 private:
  std::vector<SwitchInfo> switches_;
};

// Controller-side view of control-channel liveness. Disconnections are the
// physical fault behind the paper's "unresponsive switch" use case; the
// outage intervals recorded here feed the controller's fault log.
class ControlChannel {
 public:
  struct Outage {
    SwitchId sw;
    SimTime start;
    std::optional<SimTime> end;  // nullopt = still down

    [[nodiscard]] bool covers(SimTime t) const noexcept {
      return start <= t && (!end.has_value() || t <= *end);
    }
  };

  // Switches start connected implicitly.
  void disconnect(SwitchId sw, SimTime at);
  void reconnect(SwitchId sw, SimTime at);

  [[nodiscard]] bool connected(SwitchId sw) const noexcept;
  [[nodiscard]] std::span<const Outage> outages() const noexcept {
    return outages_;
  }
  [[nodiscard]] bool was_down_at(SwitchId sw, SimTime t) const noexcept;

  // Forget every outage recorded at or after watermark `n`, reconnecting
  // switches whose only outage record was dropped (repair-journal
  // support: storm episodes flap connected switches post-watermark, so
  // truncation restores the arm-time channel exactly; an episode that
  // closed a *pre*-watermark outage edited an old record in place and is
  // outside the journal's domain, as with fault-log records).
  void truncate(std::size_t n);

 private:
  std::unordered_map<SwitchId, std::size_t> open_outage_;  // sw -> index
  std::vector<Outage> outages_;
};

}  // namespace scout
