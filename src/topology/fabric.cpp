#include "src/topology/fabric.h"

#include <sstream>
#include <stdexcept>

namespace scout {

SwitchId Fabric::add_switch(std::string name, SwitchRole role,
                            std::size_t tcam_capacity) {
  const SwitchId id{static_cast<std::uint32_t>(switches_.size())};
  switches_.push_back(SwitchInfo{id, std::move(name), role, tcam_capacity});
  return id;
}

const SwitchInfo& Fabric::info(SwitchId id) const {
  if (!id.valid() || id.value() >= switches_.size()) {
    throw std::out_of_range{"Fabric::info: unknown switch"};
  }
  return switches_[id.value()];
}

std::vector<SwitchId> Fabric::leaves() const {
  std::vector<SwitchId> out;
  for (const auto& s : switches_) {
    if (s.role == SwitchRole::kLeaf) out.push_back(s.id);
  }
  return out;
}

Fabric Fabric::leaf_spine(std::size_t n_leaves, std::size_t n_spines,
                          std::size_t tcam_capacity) {
  Fabric f;
  for (std::size_t i = 0; i < n_leaves; ++i) {
    std::ostringstream name;
    name << "leaf-" << i;
    f.add_switch(name.str(), SwitchRole::kLeaf, tcam_capacity);
  }
  for (std::size_t i = 0; i < n_spines; ++i) {
    std::ostringstream name;
    name << "spine-" << i;
    f.add_switch(name.str(), SwitchRole::kSpine, tcam_capacity);
  }
  return f;
}

void ControlChannel::disconnect(SwitchId sw, SimTime at) {
  if (open_outage_.contains(sw)) return;  // already down
  open_outage_[sw] = outages_.size();
  outages_.push_back(Outage{sw, at, std::nullopt});
}

void ControlChannel::reconnect(SwitchId sw, SimTime at) {
  auto it = open_outage_.find(sw);
  if (it == open_outage_.end()) return;  // already up
  outages_[it->second].end = at;
  open_outage_.erase(it);
}

bool ControlChannel::connected(SwitchId sw) const noexcept {
  return !open_outage_.contains(sw);
}

bool ControlChannel::was_down_at(SwitchId sw, SimTime t) const noexcept {
  for (const auto& o : outages_) {
    if (o.sw == sw && o.covers(t)) return true;
  }
  return false;
}

void ControlChannel::truncate(std::size_t n) {
  if (n >= outages_.size()) return;
  outages_.resize(n);
  std::erase_if(open_outage_,
                [n](const auto& entry) { return entry.second >= n; });
}

}  // namespace scout
