#include "src/correlation/event_correlation.h"

#include <algorithm>
#include <sstream>

namespace scout {

std::string_view to_string(RootCauseType t) noexcept {
  switch (t) {
    case RootCauseType::kTcamOverflow:
      return "TCAM overflow";
    case RootCauseType::kSwitchUnreachable:
      return "switch unreachable";
    case RootCauseType::kAgentCrash:
      return "agent crash";
    case RootCauseType::kTcamCorruption:
      return "TCAM corruption";
    case RootCauseType::kRuleEviction:
      return "rule eviction";
    case RootCauseType::kUnknown:
      return "unknown";
  }
  return "?";
}

EventCorrelationEngine::EventCorrelationEngine() {
  signatures_ = {
      {"tcam-overflow", FaultCode::kTcamOverflow, FaultSeverity::kWarning,
       RootCauseType::kTcamOverflow},
      {"switch-unreachable", FaultCode::kSwitchUnreachable,
       FaultSeverity::kWarning, RootCauseType::kSwitchUnreachable},
      {"agent-crash", FaultCode::kAgentCrash, FaultSeverity::kWarning,
       RootCauseType::kAgentCrash},
      {"tcam-parity", FaultCode::kTcamParityError, FaultSeverity::kWarning,
       RootCauseType::kTcamCorruption},
      {"rule-eviction", FaultCode::kRuleEviction, FaultSeverity::kInfo,
       RootCauseType::kRuleEviction},
  };
}

const FaultSignature* EventCorrelationEngine::match(
    const FaultRecord& record) const noexcept {
  for (const auto& sig : signatures_) {
    if (sig.code == record.code &&
        static_cast<int>(record.severity) >=
            static_cast<int>(sig.min_severity)) {
      return &sig;
    }
  }
  return nullptr;
}

std::vector<RootCause> EventCorrelationEngine::correlate(
    std::span<const ObjectRef> hypothesis, const ChangeLog& change_log,
    const FaultLog& fault_log, const ObjectScope& scope) const {
  std::vector<RootCause> out;
  out.reserve(hypothesis.size());

  for (const ObjectRef obj : hypothesis) {
    RootCause rc;
    rc.object = obj;

    // A switch in the hypothesis (controller risk model) is matched against
    // its own fault records directly — it *is* the physical object.
    if (obj.type() == ObjectType::kSwitch) {
      const SwitchId sw = obj.as_switch();
      for (const auto& rec : fault_log.records()) {
        if (rec.sw != sw) continue;
        if (const FaultSignature* sig = match(rec); sig != nullptr) {
          rc.type = sig->cause;
          rc.sw = sw;
          std::ostringstream os;
          os << "switch fault '" << to_string(rec.code) << "' (" << rec.detail
             << ") raised at " << rec.raised;
          rc.explanation = os.str();
          break;
        }
      }
      if (rc.type == RootCauseType::kUnknown) {
        rc.explanation = "no fault log matched any signature for this switch";
      }
      out.push_back(std::move(rc));
      continue;
    }

    // (i) change records for this object, (ii) fault records active at the
    // change timestamps, (iii) signature match.
    const std::vector<ChangeRecord> changes = change_log.history(obj);
    const auto scope_it = scope.find(obj);

    bool matched = false;
    for (const ChangeRecord& change : changes) {
      for (const auto& rec : fault_log.records()) {
        if (!rec.active_at(change.time)) continue;
        if (scope_it != scope.end()) {
          const auto& switches = scope_it->second;
          if (std::find(switches.begin(), switches.end(), rec.sw) ==
              switches.end()) {
            continue;  // fault on a switch this object never deploys to
          }
        }
        if (const FaultSignature* sig = match(rec); sig != nullptr) {
          rc.type = sig->cause;
          rc.sw = rec.sw;
          std::ostringstream os;
          os << "fault '" << to_string(rec.code) << "' on switch " << rec.sw
             << " active when object changed at " << change.time << " ("
             << rec.detail << ')';
          rc.explanation = os.str();
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
    if (!matched) {
      rc.explanation =
          changes.empty()
              ? "object has no change-log records; no signature matched"
              : "no active fault matched a signature at change time";
    }
    out.push_back(std::move(rc));
  }
  return out;
}

}  // namespace scout
