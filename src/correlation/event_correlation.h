// Event correlation engine (paper §V-A): joins the localization hypothesis
// with the controller change log and the device/controller fault logs to
// output most-likely physical-level root causes.
//
// Workflow per the paper: (i) the hypothesis selects which change-log
// records matter; (ii) their timestamps narrow the fault logs to records
// "logged before the policy changes and keep alive"; (iii) matching fault
// records against pre-configured signatures tags each impacted object with
// a root cause, or 'unknown' when nothing matches (e.g. silent TCAM
// corruption, which raises no fault log).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/agent/fault_log.h"
#include "src/policy/change_log.h"
#include "src/policy/object_ref.h"

namespace scout {

enum class RootCauseType : std::uint8_t {
  kTcamOverflow,
  kSwitchUnreachable,
  kAgentCrash,
  kTcamCorruption,
  kRuleEviction,
  kUnknown,
};

[[nodiscard]] std::string_view to_string(RootCauseType t) noexcept;

struct RootCause {
  ObjectRef object;  // the faulty policy object being explained
  RootCauseType type = RootCauseType::kUnknown;
  std::optional<SwitchId> sw;  // where the physical fault occurred
  std::string explanation;
};

// A signature maps a fault-log code to a root-cause class. Admins compose
// these from domain knowledge; more signatures = better coverage (§V-A).
struct FaultSignature {
  std::string name;
  FaultCode code = FaultCode::kTcamOverflow;
  FaultSeverity min_severity = FaultSeverity::kInfo;
  RootCauseType cause = RootCauseType::kUnknown;
};

// Which switches each policy object's rules were deployed to; built from
// compiled-rule provenance by the caller. Used to require that a fault
// record's switch is actually in the object's deployment scope.
using ObjectScope = std::unordered_map<ObjectRef, std::vector<SwitchId>>;

class EventCorrelationEngine {
 public:
  // Pre-configures the paper's known-fault signatures (TCAM overflow,
  // unresponsive switch, agent crash, parity error, rule eviction).
  EventCorrelationEngine();

  void add_signature(FaultSignature sig) {
    signatures_.push_back(std::move(sig));
  }
  [[nodiscard]] std::span<const FaultSignature> signatures() const noexcept {
    return signatures_;
  }

  [[nodiscard]] std::vector<RootCause> correlate(
      std::span<const ObjectRef> hypothesis, const ChangeLog& change_log,
      const FaultLog& fault_log, const ObjectScope& scope) const;

 private:
  [[nodiscard]] const FaultSignature* match(
      const FaultRecord& record) const noexcept;

  std::vector<FaultSignature> signatures_;
};

}  // namespace scout
