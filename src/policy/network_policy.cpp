#include "src/policy/network_policy.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/common/hash.h"

namespace scout {
namespace {

template <typename T, typename IdT>
const T& at_or_throw(const std::vector<T>& v, IdT id, const char* what) {
  if (!id.valid() || id.value() >= v.size()) {
    std::ostringstream os;
    os << what << " id " << id.value() << " out of range (size " << v.size()
       << ')';
    throw std::out_of_range{os.str()};
  }
  return v[id.value()];
}

}  // namespace

TenantId NetworkPolicy::add_tenant(std::string name) {
  const TenantId id{static_cast<std::uint32_t>(tenants_.size())};
  tenants_.push_back(Tenant{id, std::move(name)});
  return id;
}

VrfId NetworkPolicy::add_vrf(std::string name, TenantId tenant) {
  at_or_throw(tenants_, tenant, "tenant");
  const VrfId id{static_cast<std::uint32_t>(vrfs_.size())};
  vrfs_.push_back(Vrf{id, std::move(name), tenant});
  return id;
}

EpgId NetworkPolicy::add_epg(std::string name, VrfId vrf) {
  at_or_throw(vrfs_, vrf, "vrf");
  const EpgId id{static_cast<std::uint32_t>(epgs_.size())};
  epgs_.push_back(Epg{id, std::move(name), vrf, {}});
  return id;
}

EndpointId NetworkPolicy::add_endpoint(std::string name, EpgId epg,
                                       SwitchId sw) {
  at_or_throw(epgs_, epg, "epg");
  const EndpointId id{static_cast<std::uint32_t>(endpoints_.size())};
  endpoints_.push_back(Endpoint{id, std::move(name), epg, sw});
  epgs_[epg.value()].endpoints.push_back(id);
  return id;
}

FilterId NetworkPolicy::add_filter(std::string name,
                                   std::vector<FilterEntry> entries) {
  const FilterId id{static_cast<std::uint32_t>(filters_.size())};
  filters_.push_back(Filter{id, std::move(name), std::move(entries)});
  return id;
}

ContractId NetworkPolicy::add_contract(std::string name,
                                       std::vector<FilterId> filters) {
  for (FilterId f : filters) at_or_throw(filters_, f, "filter");
  const ContractId id{static_cast<std::uint32_t>(contracts_.size())};
  contracts_.push_back(Contract{id, std::move(name), std::move(filters)});
  return id;
}

void NetworkPolicy::link(EpgId consumer, EpgId provider, ContractId contract) {
  at_or_throw(epgs_, consumer, "epg");
  at_or_throw(epgs_, provider, "epg");
  at_or_throw(contracts_, contract, "contract");
  const ContractLink l{consumer, provider, contract};
  if (std::find(links_.begin(), links_.end(), l) == links_.end()) {
    links_.push_back(l);
  }
}

void NetworkPolicy::unlink(EpgId consumer, EpgId provider,
                           ContractId contract) {
  const ContractLink l{consumer, provider, contract};
  links_.erase(std::remove(links_.begin(), links_.end(), l), links_.end());
}

void NetworkPolicy::add_filter_to_contract(ContractId contract,
                                           FilterId filter) {
  at_or_throw(filters_, filter, "filter");
  auto& c = contracts_.at(contract.value());
  if (std::find(c.filters.begin(), c.filters.end(), filter) ==
      c.filters.end()) {
    c.filters.push_back(filter);
  }
}

void NetworkPolicy::remove_filter_from_contract(ContractId contract,
                                                FilterId filter) {
  auto& c = contracts_.at(contract.value());
  c.filters.erase(std::remove(c.filters.begin(), c.filters.end(), filter),
                  c.filters.end());
}

void NetworkPolicy::add_entry_to_filter(FilterId filter, FilterEntry entry) {
  filters_.at(filter.value()).entries.push_back(entry);
}

void NetworkPolicy::move_endpoint(EndpointId ep, SwitchId to) {
  at_or_throw(endpoints_, ep, "endpoint");
  endpoints_[ep.value()].attached_switch = to;
}

const Tenant& NetworkPolicy::tenant(TenantId id) const {
  return at_or_throw(tenants_, id, "tenant");
}
const Vrf& NetworkPolicy::vrf(VrfId id) const {
  return at_or_throw(vrfs_, id, "vrf");
}
const Epg& NetworkPolicy::epg(EpgId id) const {
  return at_or_throw(epgs_, id, "epg");
}
const Endpoint& NetworkPolicy::endpoint(EndpointId id) const {
  return at_or_throw(endpoints_, id, "endpoint");
}
const Contract& NetworkPolicy::contract(ContractId id) const {
  return at_or_throw(contracts_, id, "contract");
}
const Filter& NetworkPolicy::filter(FilterId id) const {
  return at_or_throw(filters_, id, "filter");
}

std::vector<EpgPair> NetworkPolicy::epg_pairs() const {
  std::unordered_set<EpgPair> seen;
  std::vector<EpgPair> out;
  for (const auto& l : links_) {
    const EpgPair p{l.consumer, l.provider};
    if (seen.insert(p).second) out.push_back(p);
  }
  return out;
}

std::vector<ContractId> NetworkPolicy::contracts_between(
    const EpgPair& pair) const {
  std::vector<ContractId> out;
  for (const auto& l : links_) {
    if (EpgPair{l.consumer, l.provider} == pair &&
        std::find(out.begin(), out.end(), l.contract) == out.end()) {
      out.push_back(l.contract);
    }
  }
  return out;
}

std::vector<ObjectRef> NetworkPolicy::objects_for_pair(
    const EpgPair& pair) const {
  std::vector<ObjectRef> out;
  const Epg& a = epg(pair.a);
  out.push_back(ObjectRef::of(a.vrf));
  out.push_back(ObjectRef::of(pair.a));
  if (pair.b != pair.a) out.push_back(ObjectRef::of(pair.b));
  std::unordered_set<FilterId> seen_filters;
  for (ContractId c : contracts_between(pair)) {
    out.push_back(ObjectRef::of(c));
    for (FilterId f : contract(c).filters) {
      if (seen_filters.insert(f).second) out.push_back(ObjectRef::of(f));
    }
  }
  return out;
}

std::vector<SwitchId> NetworkPolicy::switches_hosting(EpgId id) const {
  std::unordered_set<SwitchId> seen;
  std::vector<SwitchId> out;
  for (EndpointId ep : epg(id).endpoints) {
    const SwitchId sw = endpoint(ep).attached_switch;
    if (seen.insert(sw).second) out.push_back(sw);
  }
  return out;
}

std::vector<SwitchId> NetworkPolicy::switches_for_pair(
    const EpgPair& pair) const {
  std::unordered_set<SwitchId> seen;
  std::vector<SwitchId> out;
  for (EpgId e : {pair.a, pair.b}) {
    for (SwitchId sw : switches_hosting(e)) {
      if (seen.insert(sw).second) out.push_back(sw);
    }
    if (pair.b == pair.a) break;
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EpgPair> NetworkPolicy::epg_pairs_on_switch(SwitchId sw) const {
  std::vector<EpgPair> out;
  for (const EpgPair& p : epg_pairs()) {
    const auto switches = switches_for_pair(p);
    if (std::find(switches.begin(), switches.end(), sw) != switches.end()) {
      out.push_back(p);
    }
  }
  return out;
}

std::vector<std::string> NetworkPolicy::validate() const {
  std::vector<std::string> violations;
  auto complain = [&violations](const auto&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    violations.push_back(os.str());
  };

  for (const auto& v : vrfs_) {
    if (!v.tenant.valid() || v.tenant.value() >= tenants_.size())
      complain("vrf ", v.id, " references missing tenant ", v.tenant);
  }
  for (const auto& e : epgs_) {
    if (!e.vrf.valid() || e.vrf.value() >= vrfs_.size())
      complain("epg ", e.id, " references missing vrf ", e.vrf);
    for (EndpointId ep : e.endpoints) {
      if (ep.value() >= endpoints_.size()) {
        complain("epg ", e.id, " references missing endpoint ", ep);
      } else if (endpoints_[ep.value()].epg != e.id) {
        complain("endpoint ", ep, " does not reference epg ", e.id, " back");
      }
    }
  }
  for (const auto& c : contracts_) {
    if (c.filters.empty()) complain("contract ", c.id, " has no filters");
    for (FilterId f : c.filters) {
      if (f.value() >= filters_.size())
        complain("contract ", c.id, " references missing filter ", f);
    }
  }
  for (const auto& f : filters_) {
    if (f.entries.empty()) complain("filter ", f.id, " has no entries");
    for (const auto& e : f.entries) {
      if (!e.valid())
        complain("filter ", f.id, " has inverted port range ", e.port_lo, '-',
                 e.port_hi);
    }
  }
  for (const auto& l : links_) {
    if (l.consumer.value() >= epgs_.size() ||
        l.provider.value() >= epgs_.size() ||
        l.contract.value() >= contracts_.size()) {
      complain("dangling contract link");
      continue;
    }
    // Same-VRF requirement keeps one VRF per rule (Figure 2's rule format);
    // APIC inter-VRF contracts exist but the paper's model scopes EPG pairs
    // within a VRF.
    if (epgs_[l.consumer.value()].vrf != epgs_[l.provider.value()].vrf) {
      complain("link ", l.consumer, "<->", l.provider,
               " crosses VRFs; unsupported");
    }
  }
  return violations;
}

NetworkPolicy::Counts NetworkPolicy::counts() const noexcept {
  return Counts{tenants_.size(), vrfs_.size(),      epgs_.size(),
                endpoints_.size(), contracts_.size(), filters_.size(),
                links_.size()};
}

}  // namespace scout
