// ObjectRef: a typed handle to any policy or physical object that can act as
// a *shared risk* in the paper's risk models (§III): VRFs, EPGs, contracts,
// filters and switches. Risk-model nodes, hypotheses, change logs and
// ground-truth fault sets are all sets of ObjectRefs.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

#include "src/common/hash.h"
#include "src/common/ids.h"

namespace scout {

enum class ObjectType : std::uint8_t {
  kTenant,
  kVrf,
  kEpg,
  kEndpoint,
  kContract,
  kFilter,
  kSwitch,
};

[[nodiscard]] std::string_view to_string(ObjectType t) noexcept;

class ObjectRef {
 public:
  constexpr ObjectRef() noexcept = default;
  constexpr ObjectRef(ObjectType type, std::uint32_t raw) noexcept
      : type_(type), raw_(raw) {}

  // Implicit-free factories keep call sites readable and type-safe.
  static constexpr ObjectRef of(TenantId id) noexcept {
    return {ObjectType::kTenant, id.value()};
  }
  static constexpr ObjectRef of(VrfId id) noexcept {
    return {ObjectType::kVrf, id.value()};
  }
  static constexpr ObjectRef of(EpgId id) noexcept {
    return {ObjectType::kEpg, id.value()};
  }
  static constexpr ObjectRef of(EndpointId id) noexcept {
    return {ObjectType::kEndpoint, id.value()};
  }
  static constexpr ObjectRef of(ContractId id) noexcept {
    return {ObjectType::kContract, id.value()};
  }
  static constexpr ObjectRef of(FilterId id) noexcept {
    return {ObjectType::kFilter, id.value()};
  }
  static constexpr ObjectRef of(SwitchId id) noexcept {
    return {ObjectType::kSwitch, id.value()};
  }

  [[nodiscard]] constexpr ObjectType type() const noexcept { return type_; }
  [[nodiscard]] constexpr std::uint32_t raw() const noexcept { return raw_; }

  [[nodiscard]] constexpr VrfId as_vrf() const noexcept { return VrfId{raw_}; }
  [[nodiscard]] constexpr EpgId as_epg() const noexcept { return EpgId{raw_}; }
  [[nodiscard]] constexpr ContractId as_contract() const noexcept {
    return ContractId{raw_};
  }
  [[nodiscard]] constexpr FilterId as_filter() const noexcept {
    return FilterId{raw_};
  }
  [[nodiscard]] constexpr SwitchId as_switch() const noexcept {
    return SwitchId{raw_};
  }

  friend constexpr auto operator<=>(ObjectRef, ObjectRef) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, ObjectRef ref);

 private:
  ObjectType type_ = ObjectType::kTenant;
  std::uint32_t raw_ = 0xFFFFFFFFU;
};

}  // namespace scout

namespace std {
template <>
struct hash<scout::ObjectRef> {
  size_t operator()(scout::ObjectRef r) const noexcept {
    return scout::hash_all(static_cast<unsigned>(r.type()), r.raw());
  }
};
}  // namespace std
