// The remaining APIC-style policy objects (paper §II-A, Figure 1(b)):
// tenant, VRF, endpoint group (EPG), endpoint and contract, plus the
// contract link (which EPG pair a contract glues together).
#pragma once

#include <string>
#include <vector>

#include "src/common/hash.h"
#include "src/common/ids.h"

namespace scout {

struct Tenant {
  TenantId id;
  std::string name;
};

// Layer-3 VPN scope for a set of EPGs (realized as a VRF object).
struct Vrf {
  VrfId id;
  std::string name;
  TenantId tenant;
};

// A set of endpoints belonging to the same application tier.
struct Epg {
  EpgId id;
  std::string name;
  VrfId vrf;
  std::vector<EndpointId> endpoints;
};

// A server/VM attached to a leaf switch.
struct Endpoint {
  EndpointId id;
  std::string name;
  EpgId epg;
  SwitchId attached_switch;
};

// A contract bundles filters and is provided/consumed by EPGs.
struct Contract {
  ContractId id;
  std::string name;
  std::vector<FilterId> filters;
};

// "EPG A talks to EPG B under contract C." Consumer/provider distinction is
// kept for fidelity to the APIC model; rule generation is bidirectional
// (Figure 2 installs both directions per filter entry).
struct ContractLink {
  EpgId consumer;
  EpgId provider;
  ContractId contract;

  friend constexpr auto operator<=>(const ContractLink&,
                                    const ContractLink&) noexcept = default;
};

// Canonical unordered EPG pair: the "element" of the switch risk model.
struct EpgPair {
  EpgId a;  // invariant: a.value() <= b.value()
  EpgId b;

  EpgPair() = default;
  EpgPair(EpgId x, EpgId y) noexcept {
    if (y < x) std::swap(x, y);
    a = x;
    b = y;
  }

  friend constexpr auto operator<=>(const EpgPair&,
                                    const EpgPair&) noexcept = default;
};

inline std::ostream& operator<<(std::ostream& os, const EpgPair& p) {
  return os << "EPGpair(" << p.a << ',' << p.b << ')';
}

}  // namespace scout

namespace std {
template <>
struct hash<scout::EpgPair> {
  size_t operator()(const scout::EpgPair& p) const noexcept {
    return scout::hash_all(p.a, p.b);
  }
};
}  // namespace std
