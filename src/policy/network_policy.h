// NetworkPolicy: the controller's authoritative store of policy objects and
// their relationships (paper Figure 1(b)). This is the "desired state" of
// the network; the compiler renders it into per-switch logical views and
// L-type rules, and the risk models are built from its dependency structure.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/ids.h"
#include "src/policy/filter.h"
#include "src/policy/object_ref.h"
#include "src/policy/objects.h"

namespace scout {

class NetworkPolicy {
 public:
  // -- construction ---------------------------------------------------------
  TenantId add_tenant(std::string name);
  VrfId add_vrf(std::string name, TenantId tenant);
  EpgId add_epg(std::string name, VrfId vrf);
  EndpointId add_endpoint(std::string name, EpgId epg, SwitchId sw);
  FilterId add_filter(std::string name, std::vector<FilterEntry> entries);
  ContractId add_contract(std::string name, std::vector<FilterId> filters);

  // Declare that `consumer` and `provider` communicate under `contract`.
  void link(EpgId consumer, EpgId provider, ContractId contract);
  void unlink(EpgId consumer, EpgId provider, ContractId contract);

  // -- mutation (the §V-B use cases mutate a live policy) -------------------
  void add_filter_to_contract(ContractId contract, FilterId filter);
  void remove_filter_from_contract(ContractId contract, FilterId filter);
  void add_entry_to_filter(FilterId filter, FilterEntry entry);
  // VM migration: the endpoint re-attaches to another leaf.
  void move_endpoint(EndpointId ep, SwitchId to);

  // -- lookup ----------------------------------------------------------------
  [[nodiscard]] const Tenant& tenant(TenantId id) const;
  [[nodiscard]] const Vrf& vrf(VrfId id) const;
  [[nodiscard]] const Epg& epg(EpgId id) const;
  [[nodiscard]] const Endpoint& endpoint(EndpointId id) const;
  [[nodiscard]] const Contract& contract(ContractId id) const;
  [[nodiscard]] const Filter& filter(FilterId id) const;

  [[nodiscard]] std::span<const Tenant> tenants() const noexcept {
    return tenants_;
  }
  [[nodiscard]] std::span<const Vrf> vrfs() const noexcept { return vrfs_; }
  [[nodiscard]] std::span<const Epg> epgs() const noexcept { return epgs_; }
  [[nodiscard]] std::span<const Endpoint> endpoints() const noexcept {
    return endpoints_;
  }
  [[nodiscard]] std::span<const Contract> contracts() const noexcept {
    return contracts_;
  }
  [[nodiscard]] std::span<const Filter> filters() const noexcept {
    return filters_;
  }
  [[nodiscard]] std::span<const ContractLink> links() const noexcept {
    return links_;
  }

  // -- derived queries -------------------------------------------------------
  // All distinct EPG pairs with at least one contract link.
  [[nodiscard]] std::vector<EpgPair> epg_pairs() const;

  // Contracts linking the two EPGs of `pair` (either direction).
  [[nodiscard]] std::vector<ContractId> contracts_between(
      const EpgPair& pair) const;

  // Every policy object the pair relies on for connectivity: the shared
  // risks of the pair (paper §III): VRF, both EPGs, contracts, filters.
  [[nodiscard]] std::vector<ObjectRef> objects_for_pair(
      const EpgPair& pair) const;

  // Switches that host at least one endpoint of `epg`.
  [[nodiscard]] std::vector<SwitchId> switches_hosting(EpgId epg) const;

  // Switches involved in deploying rules for `pair`: the union of switches
  // hosting either EPG (the controller pushes the pair's rules to each).
  [[nodiscard]] std::vector<SwitchId> switches_for_pair(
      const EpgPair& pair) const;

  // EPG pairs whose rules are deployed on `sw`.
  [[nodiscard]] std::vector<EpgPair> epg_pairs_on_switch(SwitchId sw) const;

  // -- integrity -------------------------------------------------------------
  // Referential validation; returns human-readable violations (empty = OK).
  // Checks: ids resolve; linked EPGs share a VRF; contracts are non-empty;
  // filter entries are well-formed; endpoints reference their EPG back.
  [[nodiscard]] std::vector<std::string> validate() const;

  struct Counts {
    std::size_t tenants, vrfs, epgs, endpoints, contracts, filters, links;
  };
  [[nodiscard]] Counts counts() const noexcept;

 private:
  [[nodiscard]] bool has(EpgId id) const noexcept {
    return id.value() < epgs_.size();
  }
  [[nodiscard]] bool has(ContractId id) const noexcept {
    return id.value() < contracts_.size();
  }
  [[nodiscard]] bool has(FilterId id) const noexcept {
    return id.value() < filters_.size();
  }

  std::vector<Tenant> tenants_;
  std::vector<Vrf> vrfs_;
  std::vector<Epg> epgs_;
  std::vector<Endpoint> endpoints_;
  std::vector<Contract> contracts_;
  std::vector<Filter> filters_;
  std::vector<ContractLink> links_;
};

}  // namespace scout
