#include "src/policy/policy_index.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace scout {

PolicyIndex::PolicyIndex(const NetworkPolicy& policy) : policy_(&policy) {
  // pair -> contracts (link order, deduped)
  for (const ContractLink& l : policy.links()) {
    const EpgPair pair{l.consumer, l.provider};
    auto [it, inserted] = pair_idx_.try_emplace(pair, pairs_.size());
    if (inserted) {
      pairs_.push_back(pair);
      contracts_.emplace_back();
    }
    auto& cs = contracts_[it->second];
    if (std::find(cs.begin(), cs.end(), l.contract) == cs.end()) {
      cs.push_back(l.contract);
    }
  }

  // epg -> switches, one endpoint scan
  std::unordered_map<EpgId, std::vector<SwitchId>> epg_switches;
  for (const Endpoint& ep : policy.endpoints()) {
    auto& v = epg_switches[ep.epg];
    if (std::find(v.begin(), v.end(), ep.attached_switch) == v.end()) {
      v.push_back(ep.attached_switch);
    }
  }

  objects_.resize(pairs_.size());
  switches_.resize(pairs_.size());
  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    const EpgPair& pair = pairs_[i];

    // Objects: VRF, EPGs, contracts, filters (deduped, stable order).
    auto& objs = objects_[i];
    objs.push_back(ObjectRef::of(policy.epg(pair.a).vrf));
    objs.push_back(ObjectRef::of(pair.a));
    if (pair.b != pair.a) objs.push_back(ObjectRef::of(pair.b));
    std::unordered_set<FilterId> seen_filters;
    for (ContractId c : contracts_[i]) {
      objs.push_back(ObjectRef::of(c));
      for (FilterId f : policy.contract(c).filters) {
        if (seen_filters.insert(f).second) objs.push_back(ObjectRef::of(f));
      }
    }

    // Switches: union over both EPGs, sorted for determinism.
    auto& sws = switches_[i];
    for (const EpgId e : {pair.a, pair.b}) {
      const auto it = epg_switches.find(e);
      if (it != epg_switches.end()) {
        for (SwitchId sw : it->second) {
          if (std::find(sws.begin(), sws.end(), sw) == sws.end()) {
            sws.push_back(sw);
          }
        }
      }
      if (pair.a == pair.b) break;
    }
    std::sort(sws.begin(), sws.end());
    for (SwitchId sw : sws) by_switch_[sw].push_back(pair);
  }
}

std::size_t PolicyIndex::pair_index(const EpgPair& p) const {
  const auto it = pair_idx_.find(p);
  if (it == pair_idx_.end()) {
    throw std::out_of_range{"PolicyIndex: unknown EPG pair"};
  }
  return it->second;
}

const std::vector<ContractId>& PolicyIndex::contracts_of(
    const EpgPair& p) const {
  return contracts_[pair_index(p)];
}

const std::vector<ObjectRef>& PolicyIndex::objects_of(const EpgPair& p) const {
  return objects_[pair_index(p)];
}

const std::vector<SwitchId>& PolicyIndex::switches_of(const EpgPair& p) const {
  return switches_[pair_index(p)];
}

const std::vector<EpgPair>& PolicyIndex::pairs_on_switch(SwitchId sw) const {
  static const std::vector<EpgPair> kEmpty;
  const auto it = by_switch_.find(sw);
  return it == by_switch_.end() ? kEmpty : it->second;
}

std::vector<SwitchId> PolicyIndex::all_switches() const {
  std::vector<SwitchId> out;
  out.reserve(by_switch_.size());
  for (const auto& [sw, pairs] : by_switch_) out.push_back(sw);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace scout
