// Controller change log (paper §IV-C, §V-A). Every add/modify/delete the
// controller applies to a policy object is recorded with a timestamp.
// SCOUT's stage 2 consults this log for observations its stage-1 set cover
// left unexplained, and the event-correlation engine joins it against
// device fault logs to find physical root causes.
#pragma once

#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "src/common/sim_clock.h"
#include "src/policy/object_ref.h"

namespace scout {

enum class ChangeAction : std::uint8_t { kAdd, kModify, kDelete };

[[nodiscard]] std::string_view to_string(ChangeAction a) noexcept;

struct ChangeRecord {
  SimTime time;
  ObjectRef object;
  ChangeAction action = ChangeAction::kAdd;
  // Switches the change was pushed to; empty = policy-wide (not yet
  // deployed anywhere, e.g. an object created but unused).
  std::vector<SwitchId> pushed_to;
};

class ChangeLog {
 public:
  void record(SimTime t, ObjectRef object, ChangeAction action,
              std::vector<SwitchId> pushed_to = {});

  [[nodiscard]] std::span<const ChangeRecord> records() const noexcept {
    return records_;
  }

  // Records touching `object`, newest first.
  [[nodiscard]] std::vector<ChangeRecord> history(ObjectRef object) const;

  // Objects changed in the window (now - window_ms, now]. This is SCOUT's
  // "recently applied actions" set (Algorithm 1, lines 21-24).
  [[nodiscard]] std::unordered_set<ObjectRef> changed_since(
      SimTime now, std::int64_t window_ms) const;

  // Most recent change to `object`, if any.
  [[nodiscard]] std::optional<ChangeRecord> last_change(ObjectRef object) const;

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  void clear() noexcept { records_.clear(); }

  // Drop every record at index >= `n` (repair-journal watermark support:
  // the log is append-only, so truncating to a recorded size undoes
  // exactly the records appended since).
  void truncate(std::size_t n) noexcept {
    if (n < records_.size()) records_.resize(n);
  }

 private:
  std::vector<ChangeRecord> records_;  // append-only, time-ordered
};

}  // namespace scout
