#include "src/policy/object_ref.h"

namespace scout {

std::string_view to_string(ObjectType t) noexcept {
  switch (t) {
    case ObjectType::kTenant:
      return "Tenant";
    case ObjectType::kVrf:
      return "VRF";
    case ObjectType::kEpg:
      return "EPG";
    case ObjectType::kEndpoint:
      return "EP";
    case ObjectType::kContract:
      return "Contract";
    case ObjectType::kFilter:
      return "Filter";
    case ObjectType::kSwitch:
      return "Switch";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, ObjectRef ref) {
  return os << to_string(ref.type()) << ':' << ref.raw();
}

}  // namespace scout
