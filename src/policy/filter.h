// Filters govern access control between EPGs (paper §II-A). A filter is a
// named list of entries; each entry matches an L4 protocol and destination
// port range and carries an allow/deny action. The paper's examples are
// single-port allows ("Filter: port 80/allow"); we support ranges because
// range→ternary expansion is a real TCAM behaviour the substrate models.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/ids.h"

namespace scout {

enum class IpProtocol : std::uint8_t {
  kAny = 0,
  kTcp = 6,
  kUdp = 17,
  kIcmp = 1,
};

[[nodiscard]] std::string_view to_string(IpProtocol p) noexcept;

enum class FilterAction : std::uint8_t { kAllow, kDeny };

struct FilterEntry {
  IpProtocol protocol = IpProtocol::kTcp;
  std::uint16_t port_lo = 0;
  std::uint16_t port_hi = 0;  // inclusive; lo == hi for a single port
  FilterAction action = FilterAction::kAllow;

  [[nodiscard]] bool single_port() const noexcept { return port_lo == port_hi; }
  [[nodiscard]] bool valid() const noexcept { return port_lo <= port_hi; }

  static FilterEntry allow_tcp(std::uint16_t port) noexcept {
    return {IpProtocol::kTcp, port, port, FilterAction::kAllow};
  }
  static FilterEntry allow_range(std::uint16_t lo, std::uint16_t hi) noexcept {
    return {IpProtocol::kTcp, lo, hi, FilterAction::kAllow};
  }

  friend constexpr auto operator<=>(const FilterEntry&,
                                    const FilterEntry&) noexcept = default;
  friend std::ostream& operator<<(std::ostream& os, const FilterEntry& e);
};

struct Filter {
  FilterId id;
  std::string name;
  std::vector<FilterEntry> entries;
};

}  // namespace scout
