// JSON dump of a NetworkPolicy — lets operators inspect generated or live
// policies and diff snapshots out-of-band. Dump only (the simulator never
// needs to load one back; experiments regenerate deterministically from
// seeds).
#pragma once

#include <string>

#include "src/policy/network_policy.h"

namespace scout {

[[nodiscard]] std::string policy_to_json(const NetworkPolicy& policy);

}  // namespace scout
