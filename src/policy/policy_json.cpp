#include "src/policy/policy_json.h"

#include <sstream>

#include "src/common/json_writer.h"

namespace scout {

std::string policy_to_json(const NetworkPolicy& policy) {
  JsonWriter w;
  w.begin_object();

  w.key("tenants").begin_array();
  for (const Tenant& t : policy.tenants()) {
    w.begin_object()
        .field("id", static_cast<std::uint64_t>(t.id.value()))
        .field("name", t.name)
        .end_object();
  }
  w.end_array();

  w.key("vrfs").begin_array();
  for (const Vrf& v : policy.vrfs()) {
    w.begin_object()
        .field("id", static_cast<std::uint64_t>(v.id.value()))
        .field("name", v.name)
        .field("tenant", static_cast<std::uint64_t>(v.tenant.value()))
        .end_object();
  }
  w.end_array();

  w.key("epgs").begin_array();
  for (const Epg& e : policy.epgs()) {
    w.begin_object()
        .field("id", static_cast<std::uint64_t>(e.id.value()))
        .field("name", e.name)
        .field("vrf", static_cast<std::uint64_t>(e.vrf.value()));
    w.key("endpoints").begin_array();
    for (const EndpointId ep : e.endpoints) {
      w.value(static_cast<std::uint64_t>(ep.value()));
    }
    w.end_array().end_object();
  }
  w.end_array();

  w.key("endpoints").begin_array();
  for (const Endpoint& ep : policy.endpoints()) {
    w.begin_object()
        .field("id", static_cast<std::uint64_t>(ep.id.value()))
        .field("name", ep.name)
        .field("epg", static_cast<std::uint64_t>(ep.epg.value()))
        .field("switch",
               static_cast<std::uint64_t>(ep.attached_switch.value()))
        .end_object();
  }
  w.end_array();

  w.key("filters").begin_array();
  for (const Filter& f : policy.filters()) {
    w.begin_object()
        .field("id", static_cast<std::uint64_t>(f.id.value()))
        .field("name", f.name);
    w.key("entries").begin_array();
    for (const FilterEntry& e : f.entries) {
      std::ostringstream text;
      text << e;
      w.value(text.str());
    }
    w.end_array().end_object();
  }
  w.end_array();

  w.key("contracts").begin_array();
  for (const Contract& c : policy.contracts()) {
    w.begin_object()
        .field("id", static_cast<std::uint64_t>(c.id.value()))
        .field("name", c.name);
    w.key("filters").begin_array();
    for (const FilterId f : c.filters) {
      w.value(static_cast<std::uint64_t>(f.value()));
    }
    w.end_array().end_object();
  }
  w.end_array();

  w.key("links").begin_array();
  for (const ContractLink& l : policy.links()) {
    w.begin_object()
        .field("consumer", static_cast<std::uint64_t>(l.consumer.value()))
        .field("provider", static_cast<std::uint64_t>(l.provider.value()))
        .field("contract", static_cast<std::uint64_t>(l.contract.value()))
        .end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

}  // namespace scout
