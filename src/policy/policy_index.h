// PolicyIndex: one-pass precomputed views of a NetworkPolicy.
//
// NetworkPolicy's ad-hoc queries (contracts_between, switches_for_pair) scan
// the link/endpoint lists per call, which is fine interactively but
// quadratic when building risk models over tens of thousands of EPG pairs.
// The index computes pair -> contracts/objects/switches and
// switch -> pairs maps in a single pass and is immutable thereafter: build
// it after the policy stops changing.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "src/policy/network_policy.h"

namespace scout {

class PolicyIndex {
 public:
  explicit PolicyIndex(const NetworkPolicy& policy);

  [[nodiscard]] std::span<const EpgPair> pairs() const noexcept {
    return pairs_;
  }
  [[nodiscard]] std::size_t pair_index(const EpgPair& p) const;

  [[nodiscard]] const std::vector<ContractId>& contracts_of(
      const EpgPair& p) const;
  // Shared-risk objects of the pair: VRF, both EPGs, contracts, filters.
  [[nodiscard]] const std::vector<ObjectRef>& objects_of(
      const EpgPair& p) const;
  // Switches the pair's rules are deployed to.
  [[nodiscard]] const std::vector<SwitchId>& switches_of(
      const EpgPair& p) const;
  [[nodiscard]] const std::vector<EpgPair>& pairs_on_switch(SwitchId sw) const;
  [[nodiscard]] std::vector<SwitchId> all_switches() const;

 private:
  const NetworkPolicy* policy_;
  std::vector<EpgPair> pairs_;
  std::unordered_map<EpgPair, std::size_t> pair_idx_;
  std::vector<std::vector<ContractId>> contracts_;   // by pair index
  std::vector<std::vector<ObjectRef>> objects_;      // by pair index
  std::vector<std::vector<SwitchId>> switches_;      // by pair index
  std::unordered_map<SwitchId, std::vector<EpgPair>> by_switch_;
};

}  // namespace scout
