#include "src/policy/change_log.h"

#include <algorithm>
#include <cassert>

namespace scout {

std::string_view to_string(ChangeAction a) noexcept {
  switch (a) {
    case ChangeAction::kAdd:
      return "add";
    case ChangeAction::kModify:
      return "modify";
    case ChangeAction::kDelete:
      return "delete";
  }
  return "?";
}

void ChangeLog::record(SimTime t, ObjectRef object, ChangeAction action,
                       std::vector<SwitchId> pushed_to) {
  assert(records_.empty() || !(t < records_.back().time));
  records_.push_back(ChangeRecord{t, object, action, std::move(pushed_to)});
}

std::vector<ChangeRecord> ChangeLog::history(ObjectRef object) const {
  std::vector<ChangeRecord> out;
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->object == object) out.push_back(*it);
  }
  return out;
}

std::unordered_set<ObjectRef> ChangeLog::changed_since(
    SimTime now, std::int64_t window_ms) const {
  const SimTime cutoff{now.millis() - window_ms};
  std::unordered_set<ObjectRef> out;
  // Records are appended in non-decreasing time order (record() asserts
  // it), so binary-search the window start instead of scanning the log:
  // the first record with time > cutoff opens the half-open window
  // (cutoff, now] — a record at exactly `cutoff` is excluded, one at
  // exactly `now` included.
  const auto first = std::upper_bound(
      records_.begin(), records_.end(), cutoff,
      [](SimTime t, const ChangeRecord& r) { return t < r.time; });
  for (auto it = first; it != records_.end(); ++it) out.insert(it->object);
  return out;
}

std::optional<ChangeRecord> ChangeLog::last_change(ObjectRef object) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->object == object) return *it;
  }
  return std::nullopt;
}

}  // namespace scout
