#include "src/policy/filter.h"

namespace scout {

std::string_view to_string(IpProtocol p) noexcept {
  switch (p) {
    case IpProtocol::kAny:
      return "any";
    case IpProtocol::kTcp:
      return "tcp";
    case IpProtocol::kUdp:
      return "udp";
    case IpProtocol::kIcmp:
      return "icmp";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const FilterEntry& e) {
  os << to_string(e.protocol) << '/';
  if (e.single_port()) {
    os << e.port_lo;
  } else {
    os << e.port_lo << '-' << e.port_hi;
  }
  return os << '/' << (e.action == FilterAction::kAllow ? "allow" : "deny");
}

}  // namespace scout
