// Reduced Ordered Binary Decision Diagrams, built from scratch.
//
// The paper's L-T equivalence checker compares two rulesets by building one
// ROBDD from the logical rules (L) and one from the collected TCAM rules (T)
// and testing equivalence (§III-C). Canonicity makes the test a pointer
// comparison; the diff L ∧ ¬T is the exact packet set that should be
// deployed but is not, from which missing rules are recovered.
//
// Design notes:
//  * Nodes are hash-consed in a unique table, so structural equality is
//    reference equality (canonicity).
//  * No complement edges and no garbage collection: a manager lives for one
//    check and is dropped wholesale. This keeps the implementation simple
//    and is fast enough (the checker builds a fresh manager per switch).
//  * Variables are identified by index 0..var_count-1 with a fixed global
//    order equal to the index order.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"

namespace scout {

// Index into the manager's node pool. 0 and 1 are the terminals.
using BddRef = std::uint32_t;

inline constexpr BddRef kBddFalse = 0;
inline constexpr BddRef kBddTrue = 1;

// A literal: variable index plus phase (true = positive).
struct BddLiteral {
  std::uint32_t var;
  bool positive;
};

// A conjunction of literals (a cube). Every TCAM rule encodes to one cube.
using BddCube = std::vector<BddLiteral>;

class BddManager {
 public:
  explicit BddManager(std::uint32_t var_count);

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;
  BddManager(BddManager&&) = default;
  BddManager& operator=(BddManager&&) = default;

  [[nodiscard]] std::uint32_t var_count() const noexcept { return var_count_; }

  // -- leaf/variable constructors -------------------------------------------
  [[nodiscard]] BddRef constant(bool b) const noexcept {
    return b ? kBddTrue : kBddFalse;
  }
  [[nodiscard]] BddRef var(std::uint32_t index);   // f = x_index
  [[nodiscard]] BddRef nvar(std::uint32_t index);  // f = !x_index

  // -- boolean operations (all memoized) ------------------------------------
  [[nodiscard]] BddRef apply_and(BddRef a, BddRef b);
  [[nodiscard]] BddRef apply_or(BddRef a, BddRef b);
  [[nodiscard]] BddRef apply_xor(BddRef a, BddRef b);
  [[nodiscard]] BddRef negate(BddRef a);
  [[nodiscard]] BddRef ite(BddRef f, BddRef g, BddRef h);
  [[nodiscard]] BddRef apply_diff(BddRef a, BddRef b) {  // a ∧ ¬b
    return apply_and(a, negate(b));
  }

  // Conjunction of a cube (linear construction, no apply cache pressure).
  [[nodiscard]] BddRef cube(const BddCube& literals);

  // -- queries ---------------------------------------------------------------
  [[nodiscard]] bool is_false(BddRef f) const noexcept { return f == kBddFalse; }
  [[nodiscard]] bool is_true(BddRef f) const noexcept { return f == kBddTrue; }

  // Equivalence is canonical-reference equality.
  [[nodiscard]] bool equivalent(BddRef a, BddRef b) const noexcept {
    return a == b;
  }

  // Evaluate under a full assignment (element i = value of variable i).
  // Takes vector<bool> by reference: it is not contiguous, so span<const
  // bool> cannot view it.
  [[nodiscard]] bool evaluate(BddRef f,
                              const std::vector<bool>& assignment) const;

  // Does f have a satisfying assignment consistent with `partial`?
  // `partial` maps var -> phase for a subset of variables (a cube).
  [[nodiscard]] bool intersects_cube(BddRef f, const BddCube& partial) const;

  // Number of satisfying assignments over the full variable set (double:
  // 2^68 overflows uint64).
  [[nodiscard]] double sat_count(BddRef f) const;

  // Enumerate the satisfying paths of f as cubes: callback receives a
  // vector of per-variable values: 0, 1 or -1 (don't-care). Returns the
  // number of paths visited; enumeration stops early if the callback
  // returns false.
  std::size_t foreach_cube(
      BddRef f,
      const std::function<bool(std::span<const std::int8_t>)>& callback) const;

  // One satisfying assignment (arbitrary), as per-variable 0/1/-1 values.
  // f must not be kBddFalse.
  [[nodiscard]] std::vector<std::int8_t> any_sat(BddRef f) const;

  // -- introspection ---------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  // Nodes reachable from f (size of the DAG rooted at f).
  [[nodiscard]] std::size_t dag_size(BddRef f) const;

 private:
  struct Node {
    std::uint32_t var;  // variable index; terminals use var_count_
    BddRef low;
    BddRef high;
  };

  struct NodeKey {
    std::uint32_t var;
    BddRef low;
    BddRef high;
    bool operator==(const NodeKey&) const noexcept = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const noexcept {
      return hash_all(k.var, k.low, k.high);
    }
  };

  struct OpKey {
    std::uint32_t op;  // 0=and 1=or 2=xor 3=not(b unused)
    BddRef a;
    BddRef b;
    bool operator==(const OpKey&) const noexcept = default;
  };
  struct OpKeyHash {
    std::size_t operator()(const OpKey& k) const noexcept {
      return hash_all(k.op, k.a, k.b);
    }
  };

  struct IteKey {
    BddRef f, g, h;
    bool operator==(const IteKey&) const noexcept = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const noexcept {
      return hash_all(k.f, k.g, k.h);
    }
  };

  [[nodiscard]] BddRef make_node(std::uint32_t var, BddRef low, BddRef high);
  [[nodiscard]] BddRef apply(std::uint32_t op, BddRef a, BddRef b);
  [[nodiscard]] const Node& node(BddRef r) const noexcept { return nodes_[r]; }
  [[nodiscard]] bool is_terminal(BddRef r) const noexcept { return r <= 1; }

  std::uint32_t var_count_;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_;
  std::unordered_map<OpKey, BddRef, OpKeyHash> op_cache_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> ite_cache_;
};

}  // namespace scout
