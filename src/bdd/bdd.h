// Reduced Ordered Binary Decision Diagrams with complement edges — the
// equivalence-check substrate, built for throughput.
//
// The paper's L-T equivalence checker compares two rulesets by building one
// ROBDD from the logical rules (L) and one from the collected TCAM rules (T)
// and testing equivalence (§III-C). Canonicity makes the test a pointer
// comparison; the diff L ∧ ¬T is the exact packet set that should be
// deployed but is not, from which missing rules are recovered.
//
// Design notes (Brace–Rudell–Bryant engine layout):
//  * Complement edges: a BddRef is (node index << 1) | complement bit, so
//    negation is a single XOR and `L ∧ ¬T` is one AND. There is a single
//    terminal (node 0 = constant true); false is its complement. Canonical
//    form: the low edge of a stored node is never complemented (make_node
//    pushes the complement to the parent edge), so structural equality is
//    still reference equality.
//  * The unique table is a flat open-addressing array (linear probing,
//    power-of-two capacity) over a contiguous node pool — no per-node heap
//    allocation, no std::unordered_map. The table stores node indices; it
//    grows with the pool and rebuilds in one pass.
//  * One lossy direct-mapped operation cache serves every boolean operation:
//    AND/OR/XOR are normalized into ITE standard triples (terminal rules,
//    commutative argument ordering, complement canonicalization), so a
//    single (f, g, h) entry format covers them all. Entries are stamped
//    with a generation counter; rollback invalidates the cache by bumping
//    the generation instead of wiping the array — but entries tagged with
//    a max referenced node index wholly below the rollback watermark stay
//    servable (see CacheEntry), so the resident-logical-BDD workload keeps
//    its sub-watermark operation results across per-check rollbacks.
//  * checkpoint()/rollback(): the node pool is an arena. A checkpoint is a
//    pool watermark; rollback truncates the pool to it, rebuilds the unique
//    table and invalidates the op cache. The checker keeps the per-switch
//    logical BDDs resident below the watermark and builds each cell's
//    T-BDD above it (see checker/logical_bdd_cache.h).
//  * Queries (intersects_cube, sat_count, evaluate) reuse manager-owned
//    timestamped scratch instead of allocating per call; foreach_cube takes
//    a template callback, so the hot enumeration path has no std::function
//    indirection. A manager is single-threaded (the runtime gives each
//    worker its own); queries mutate scratch and are not reentrant.
//  * Variables are identified by index 0..var_count-1 with a fixed global
//    order equal to the index order. No garbage collection: managers are
//    dropped wholesale or rolled back to a watermark.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/check.h"

namespace scout {

// Tagged reference: bits 1..31 = node pool index, bit 0 = complement.
// Node 0 is the single terminal (constant true).
using BddRef = std::uint32_t;

inline constexpr BddRef kBddTrue = 0;   // terminal, regular edge
inline constexpr BddRef kBddFalse = 1;  // terminal, complemented edge

// A literal: variable index plus phase (true = positive).
struct BddLiteral {
  std::uint32_t var;
  bool positive;
};

// A conjunction of literals (a cube). Every TCAM rule encodes to one cube.
using BddCube = std::vector<BddLiteral>;

class BddManager {
 public:
  // `node_hint` preallocates the pool and sizes the unique table/op cache
  // so steady-state checks run without rehashing.
  explicit BddManager(std::uint32_t var_count, std::size_t node_hint = 0);

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;
  BddManager(BddManager&&) = default;
  BddManager& operator=(BddManager&&) = default;

  [[nodiscard]] std::uint32_t var_count() const noexcept { return var_count_; }

  // -- leaf/variable constructors -------------------------------------------
  [[nodiscard]] BddRef constant(bool b) const noexcept {
    return b ? kBddTrue : kBddFalse;
  }
  [[nodiscard]] BddRef var(std::uint32_t index);   // f = x_index
  [[nodiscard]] BddRef nvar(std::uint32_t index);  // f = !x_index

  // -- boolean operations ----------------------------------------------------
  // All ternary/binary ops are one memoized ITE; negate is free.
  [[nodiscard]] BddRef ite(BddRef f, BddRef g, BddRef h);
  [[nodiscard]] BddRef apply_and(BddRef a, BddRef b) {
    return ite(a, b, kBddFalse);
  }
  [[nodiscard]] BddRef apply_or(BddRef a, BddRef b) {
    return ite(a, kBddTrue, b);
  }
  [[nodiscard]] BddRef apply_xor(BddRef a, BddRef b) {
    return ite(a, negate(b), b);
  }
  [[nodiscard]] static constexpr BddRef negate(BddRef a) noexcept {
    return a ^ 1U;
  }
  [[nodiscard]] BddRef apply_diff(BddRef a, BddRef b) {  // a ∧ ¬b
    return ite(a, negate(b), kBddFalse);
  }

  // Conjunction of a cube (linear construction, no op-cache pressure).
  [[nodiscard]] BddRef cube(const BddCube& literals);

  // -- checkpoint/rollback ---------------------------------------------------
  // A checkpoint is a node-pool watermark. rollback(cp) truncates the pool
  // to it and rebuilds the unique table; every BddRef handed out at or
  // above the watermark is dead afterwards, every ref below stays valid
  // (the arena contract the logical-BDD cache rests on). Op-cache entries
  // referencing only sub-watermark nodes survive the rollback; the rest
  // are invalidated. Rolling back to the current watermark is a no-op.
  // With SCOUT_BDD_PARANOID=1 in the environment every rollback re-runs
  // check_invariants() and aborts on violation (O(nodes) — debugging aid).
  struct Checkpoint {
    std::uint32_t nodes = 0;
  };
  [[nodiscard]] Checkpoint checkpoint() const noexcept {
    return Checkpoint{static_cast<std::uint32_t>(nodes_.size())};
  }
  void rollback(Checkpoint cp);

  // -- queries ---------------------------------------------------------------
  [[nodiscard]] bool is_false(BddRef f) const noexcept { return f == kBddFalse; }
  [[nodiscard]] bool is_true(BddRef f) const noexcept { return f == kBddTrue; }

  // Equivalence is canonical-reference equality.
  [[nodiscard]] bool equivalent(BddRef a, BddRef b) const noexcept {
    return a == b;
  }

  // Evaluate under a full assignment (element i = value of variable i).
  // Takes vector<bool> by reference: it is not contiguous, so span<const
  // bool> cannot view it.
  [[nodiscard]] bool evaluate(BddRef f,
                              const std::vector<bool>& assignment) const;

  // Does f have a satisfying assignment consistent with `partial`?
  // `partial` maps var -> phase for a subset of variables (a cube).
  // Uses manager-owned timestamped scratch: no per-call allocation.
  [[nodiscard]] bool intersects_cube(BddRef f, const BddCube& partial) const;

  // Number of satisfying assignments over the full variable set (double:
  // 2^68 overflows uint64). Explicit stack + precomputed powers of two.
  [[nodiscard]] double sat_count(BddRef f) const;

  // Enumerate the satisfying paths of f as cubes: callback receives a
  // vector of per-variable values: 0, 1 or -1 (don't-care) and returns
  // false to stop early. Returns the number of paths visited.
  template <typename Callback>
  std::size_t foreach_cube(BddRef f, Callback&& callback) const {
    std::vector<std::int8_t> assignment(var_count_, -1);
    std::size_t visited = 0;
    (void)foreach_cube_rec(f, assignment, visited, callback);
    return visited;
  }

  // One satisfying assignment (arbitrary), as per-variable 0/1/-1 values.
  // f must not be kBddFalse.
  [[nodiscard]] std::vector<std::int8_t> any_sat(BddRef f) const;

  // -- introspection ---------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  // Distinct nodes reachable from f (complement bits ignored; the single
  // terminal counts once).
  [[nodiscard]] std::size_t dag_size(BddRef f) const;

  // Structural self-check (tests): every stored node has a regular low
  // edge, distinct children, strictly increasing variable order toward the
  // leaves, and exactly one unique-table entry. O(nodes).
  [[nodiscard]] bool check_invariants() const;

  // Engine counters for benches/CI: unique-table load factor, op-cache hit
  // rate, pool growth and rollback traffic.
  struct Stats {
    std::size_t nodes = 0;           // live pool size (incl. the terminal)
    std::size_t peak_nodes = 0;      // high-water mark across rollbacks
    std::size_t unique_capacity = 0;
    double unique_load = 0.0;        // live nodes / table slots
    std::size_t cache_capacity = 0;
    std::uint64_t unique_inserts = 0;
    std::uint64_t cache_lookups = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t rollbacks = 0;
    std::size_t rollback_floor = 0;  // watermark of the most recent rollback

    [[nodiscard]] double cache_hit_rate() const noexcept {
      return cache_lookups == 0
                 ? 0.0
                 : static_cast<double>(cache_hits) /
                       static_cast<double>(cache_lookups);
    }
  };
  [[nodiscard]] Stats stats() const noexcept;

 private:
  struct Node {
    std::uint32_t var;  // variable index; the terminal uses kTermVar
    BddRef low;         // stored regular (never complemented)
    BddRef high;
  };

  // Direct-mapped op-cache entry. Valid iff stamp == generation_, or the
  // entry is from the immediately preceding generation and every node it
  // references (arguments and result) lies strictly below the watermark of
  // the rollback that ended that generation — those nodes were untouched
  // by the truncation, so the canonical result still holds. A valid
  // cross-generation hit is re-stamped to the current generation, which
  // keeps hot sub-watermark entries (the resident logical BDDs' operation
  // results) alive across arbitrarily many rollbacks.
  struct CacheEntry {
    BddRef f = 0, g = 0, h = 0;
    BddRef result = 0;
    std::uint32_t stamp = 0;
    std::uint32_t max_node = 0;  // largest node index among f, g, h, result
  };

  static constexpr std::uint32_t kTermVar = 0xFFFFFFFFU;

  [[nodiscard]] static constexpr std::uint32_t index_of(BddRef r) noexcept {
    return r >> 1;
  }
  [[nodiscard]] bool is_terminal(BddRef r) const noexcept {
    return index_of(r) == 0;
  }
  [[nodiscard]] const Node& node(BddRef r) const noexcept {
    // A ref above the pool is a use-after-rollback — the exact bug class
    // the checkpoint contract exists to prevent.
    SCOUT_DCHECK(index_of(r) < nodes_.size(),
                 "BddManager: ref to node " << index_of(r) << " but pool has "
                                            << nodes_.size());
    return nodes_[index_of(r)];
  }

  [[nodiscard]] BddRef make_node(std::uint32_t var, BddRef low, BddRef high);
  // low must be regular and low != high.
  [[nodiscard]] BddRef hash_cons(std::uint32_t var, BddRef low, BddRef high);
  void grow_table();
  void rebuild_table();
  void bump_generation();
  void ensure_query_scratch() const;
  [[nodiscard]] std::uint32_t next_query_epoch() const;

  template <typename Callback>
  bool foreach_cube_rec(BddRef f, std::vector<std::int8_t>& assignment,
                        std::size_t& visited, Callback& callback) const {
    if (f == kBddFalse) return true;
    if (f == kBddTrue) {
      ++visited;
      return static_cast<bool>(
          callback(std::span<const std::int8_t>(assignment)));
    }
    const Node& n = node(f);
    const BddRef c = f & 1U;
    assignment[n.var] = 0;
    bool keep_going = foreach_cube_rec(n.low ^ c, assignment, visited,
                                       callback);
    if (keep_going) {
      assignment[n.var] = 1;
      keep_going = foreach_cube_rec(n.high ^ c, assignment, visited,
                                    callback);
    }
    assignment[n.var] = -1;
    return keep_going;
  }

  std::uint32_t var_count_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> table_;  // unique table: node index, 0 = empty
  std::uint32_t table_mask_ = 0;
  std::vector<CacheEntry> cache_;     // direct-mapped op cache
  std::uint32_t cache_mask_ = 0;
  std::uint32_t generation_ = 1;
  std::uint32_t last_floor_ = 0;      // watermark of the most recent rollback
  std::vector<double> powers_;        // powers_[i] = 2^i, i in [0, var_count]

  // Timestamped query scratch (grown lazily, shared across calls).
  mutable std::vector<std::int8_t> phase_;          // per variable
  mutable std::vector<std::uint32_t> visit_stamp_;  // per ref (2 per node)
  mutable std::vector<std::uint32_t> sat_stamp_;    // per node
  mutable std::vector<double> sat_memo_;            // per node
  mutable std::vector<BddRef> walk_stack_;
  mutable std::uint32_t query_epoch_ = 0;

  std::uint64_t unique_inserts_ = 0;
  std::uint64_t cache_lookups_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::size_t peak_nodes_ = 1;
};

}  // namespace scout
