#include "src/bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace scout {

namespace {
constexpr std::uint32_t kOpAnd = 0;
constexpr std::uint32_t kOpOr = 1;
constexpr std::uint32_t kOpXor = 2;
constexpr std::uint32_t kOpNot = 3;
}  // namespace

BddManager::BddManager(std::uint32_t var_count) : var_count_(var_count) {
  // Terminals: index 0 = false, 1 = true. They sit "below" all variables.
  nodes_.push_back(Node{var_count_, kBddFalse, kBddFalse});
  nodes_.push_back(Node{var_count_, kBddTrue, kBddTrue});
}

BddRef BddManager::make_node(std::uint32_t v, BddRef low, BddRef high) {
  if (low == high) return low;  // reduction rule
  const NodeKey key{v, low, high};
  if (const auto it = unique_.find(key); it != unique_.end()) {
    return it->second;
  }
  const auto ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{v, low, high});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::var(std::uint32_t index) {
  if (index >= var_count_) throw std::out_of_range{"BddManager::var"};
  return make_node(index, kBddFalse, kBddTrue);
}

BddRef BddManager::nvar(std::uint32_t index) {
  if (index >= var_count_) throw std::out_of_range{"BddManager::nvar"};
  return make_node(index, kBddTrue, kBddFalse);
}

BddRef BddManager::apply(std::uint32_t op, BddRef a, BddRef b) {
  // Terminal cases.
  switch (op) {
    case kOpAnd:
      if (a == kBddFalse || b == kBddFalse) return kBddFalse;
      if (a == kBddTrue) return b;
      if (b == kBddTrue) return a;
      if (a == b) return a;
      break;
    case kOpOr:
      if (a == kBddTrue || b == kBddTrue) return kBddTrue;
      if (a == kBddFalse) return b;
      if (b == kBddFalse) return a;
      if (a == b) return a;
      break;
    case kOpXor:
      if (a == b) return kBddFalse;
      if (a == kBddFalse) return b;
      if (b == kBddFalse) return a;
      break;
    default:
      break;
  }
  // AND/OR/XOR are commutative: normalize operand order for cache hits.
  if (a > b) std::swap(a, b);
  const OpKey key{op, a, b};
  if (const auto it = op_cache_.find(key); it != op_cache_.end()) {
    return it->second;
  }

  // Copies, not references: recursion below may reallocate the node pool.
  const Node na = node(a);
  const Node nb = node(b);
  const std::uint32_t v = std::min(na.var, nb.var);
  const BddRef a_lo = na.var == v ? na.low : a;
  const BddRef a_hi = na.var == v ? na.high : a;
  const BddRef b_lo = nb.var == v ? nb.low : b;
  const BddRef b_hi = nb.var == v ? nb.high : b;

  const BddRef lo = apply(op, a_lo, b_lo);
  const BddRef hi = apply(op, a_hi, b_hi);
  const BddRef result = make_node(v, lo, hi);
  op_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::apply_and(BddRef a, BddRef b) { return apply(kOpAnd, a, b); }
BddRef BddManager::apply_or(BddRef a, BddRef b) { return apply(kOpOr, a, b); }
BddRef BddManager::apply_xor(BddRef a, BddRef b) { return apply(kOpXor, a, b); }

BddRef BddManager::negate(BddRef a) {
  if (a == kBddFalse) return kBddTrue;
  if (a == kBddTrue) return kBddFalse;
  const OpKey key{kOpNot, a, 0};
  if (const auto it = op_cache_.find(key); it != op_cache_.end()) {
    return it->second;
  }
  // Copy the node fields: the recursive calls below can grow (and
  // reallocate) the node pool, so a reference would dangle.
  const Node n = node(a);
  const BddRef lo = negate(n.low);
  const BddRef hi = negate(n.high);
  const BddRef result = make_node(n.var, lo, hi);
  op_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (g == kBddTrue && h == kBddFalse) return f;
  if (g == kBddFalse && h == kBddTrue) return negate(f);

  const IteKey key{f, g, h};
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) {
    return it->second;
  }

  const std::uint32_t v =
      std::min({node(f).var, node(g).var, node(h).var});
  auto split = [&](BddRef r, bool high) {
    const Node& n = node(r);
    if (is_terminal(r) || n.var != v) return r;
    return high ? n.high : n.low;
  };
  const BddRef lo = ite(split(f, false), split(g, false), split(h, false));
  const BddRef hi = ite(split(f, true), split(g, true), split(h, true));
  const BddRef result = make_node(v, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::cube(const BddCube& literals) {
  // Build bottom-up in descending variable order so each make_node call is
  // O(1) — no apply needed for a pure conjunction of literals.
  BddCube sorted = literals;
  std::sort(sorted.begin(), sorted.end(),
            [](const BddLiteral& a, const BddLiteral& b) {
              return a.var > b.var;
            });
  BddRef acc = kBddTrue;
  std::uint32_t prev_var = var_count_;
  for (const auto& lit : sorted) {
    if (lit.var >= var_count_) throw std::out_of_range{"BddManager::cube"};
    if (lit.var == prev_var) {
      throw std::invalid_argument{"BddManager::cube: duplicate variable"};
    }
    prev_var = lit.var;
    acc = lit.positive ? make_node(lit.var, kBddFalse, acc)
                       : make_node(lit.var, acc, kBddFalse);
  }
  return acc;
}

bool BddManager::evaluate(BddRef f,
                          const std::vector<bool>& assignment) const {
  assert(assignment.size() >= var_count_);
  while (!is_terminal(f)) {
    const Node& n = node(f);
    f = assignment[n.var] ? n.high : n.low;
  }
  return f == kBddTrue;
}

bool BddManager::intersects_cube(BddRef f, const BddCube& partial) const {
  // phase[v]: -1 unconstrained, 0 forced low, 1 forced high.
  std::vector<std::int8_t> phase(var_count_, -1);
  for (const auto& lit : partial) {
    phase[lit.var] = lit.positive ? 1 : 0;
  }
  // DFS with a visited set: a node that failed once under this cube always
  // fails (the cube fixes the same branch every time we reach the node).
  std::unordered_set<BddRef> failed;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef cur = stack.back();
    stack.pop_back();
    if (cur == kBddTrue) return true;
    if (cur == kBddFalse || failed.contains(cur)) continue;
    failed.insert(cur);
    const Node& n = node(cur);
    if (phase[n.var] == 0) {
      stack.push_back(n.low);
    } else if (phase[n.var] == 1) {
      stack.push_back(n.high);
    } else {
      stack.push_back(n.low);
      stack.push_back(n.high);
    }
  }
  return false;
}

double BddManager::sat_count(BddRef f) const {
  std::unordered_map<BddRef, double> memo;
  // counts assignments of variables with index >= node's var
  std::function<double(BddRef)> rec = [&](BddRef r) -> double {
    if (r == kBddFalse) return 0.0;
    if (r == kBddTrue) return 1.0;
    if (const auto it = memo.find(r); it != memo.end()) return it->second;
    const Node& n = node(r);
    const Node& lo_n = node(n.low);
    const Node& hi_n = node(n.high);
    const double lo = rec(n.low) *
                      std::pow(2.0, static_cast<double>(lo_n.var - n.var - 1));
    const double hi = rec(n.high) *
                      std::pow(2.0, static_cast<double>(hi_n.var - n.var - 1));
    const double result = lo + hi;
    memo.emplace(r, result);
    return result;
  };
  const Node& root = node(f);
  const std::uint32_t top_var = is_terminal(f) ? var_count_ : root.var;
  return rec(f) * std::pow(2.0, static_cast<double>(top_var));
}

std::size_t BddManager::foreach_cube(
    BddRef f,
    const std::function<bool(std::span<const std::int8_t>)>& callback) const {
  std::vector<std::int8_t> assignment(var_count_, -1);
  std::size_t visited = 0;
  bool stop = false;
  std::function<void(BddRef)> rec = [&](BddRef r) {
    if (stop || r == kBddFalse) return;
    if (r == kBddTrue) {
      ++visited;
      if (!callback(assignment)) stop = true;
      return;
    }
    const Node& n = node(r);
    assignment[n.var] = 0;
    rec(n.low);
    assignment[n.var] = 1;
    rec(n.high);
    assignment[n.var] = -1;
  };
  rec(f);
  return visited;
}

std::vector<std::int8_t> BddManager::any_sat(BddRef f) const {
  if (f == kBddFalse) {
    throw std::invalid_argument{"any_sat: unsatisfiable"};
  }
  std::vector<std::int8_t> assignment(var_count_, -1);
  while (!is_terminal(f)) {
    const Node& n = node(f);
    if (n.low != kBddFalse) {
      assignment[n.var] = 0;
      f = n.low;
    } else {
      assignment[n.var] = 1;
      f = n.high;
    }
  }
  return assignment;
}

std::size_t BddManager::dag_size(BddRef f) const {
  std::unordered_set<BddRef> seen;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second || is_terminal(cur)) continue;
    stack.push_back(node(cur).low);
    stack.push_back(node(cur).high);
  }
  return seen.size();
}

}  // namespace scout
