#include "src/bdd/bdd.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "src/common/check.h"
#include "src/common/hash.h"

namespace scout {
namespace {

// SCOUT_BDD_PARANOID=1 re-verifies the full structural invariants after
// every rollback — O(nodes) per rollback, so it is an explicit debugging
// switch rather than a DCHECK. Read once; the flag cannot change mid-run.
[[nodiscard]] bool paranoid_invariants_enabled() noexcept {
  static const bool enabled = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): magic-static init runs once,
    // and nothing in this process calls setenv.
    const char* v = std::getenv("SCOUT_BDD_PARANOID");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return enabled;
}

// Three-word key mixer for the unique table and op cache (common/hash.h).
[[nodiscard]] std::uint64_t mix3(std::uint32_t a, std::uint32_t b,
                                 std::uint32_t c) noexcept {
  return mix3_u64(a, b, c);
}

constexpr std::size_t kMinTable = 1 << 6;
constexpr std::size_t kMinCache = 1 << 12;
constexpr std::size_t kMaxCache = 1 << 21;

}  // namespace

BddManager::BddManager(std::uint32_t var_count, std::size_t node_hint)
    : var_count_(var_count) {
  nodes_.reserve(std::max<std::size_t>(node_hint, 2));
  nodes_.push_back(Node{kTermVar, kBddTrue, kBddTrue});  // the one terminal
  table_.assign(std::max(kMinTable, next_pow2(node_hint * 2)), 0);
  table_mask_ = static_cast<std::uint32_t>(table_.size() - 1);
  cache_.assign(std::clamp(next_pow2(node_hint), kMinCache, kMaxCache),
                CacheEntry{});
  cache_mask_ = static_cast<std::uint32_t>(cache_.size() - 1);
  powers_.resize(var_count_ + 1);
  double p = 1.0;
  for (std::uint32_t i = 0; i <= var_count_; ++i, p *= 2.0) powers_[i] = p;
  phase_.assign(var_count_, -1);
}

BddRef BddManager::hash_cons(std::uint32_t var, BddRef low, BddRef high) {
  SCOUT_DCHECK((low & 1U) == 0, "hash_cons: complemented low edge");
  SCOUT_DCHECK(low != high, "hash_cons: redundant node");
  std::size_t slot = mix3(var, low, high) & table_mask_;
  while (table_[slot] != 0) {
    const Node& n = nodes_[table_[slot]];
    if (n.var == var && n.low == low && n.high == high) {
      return table_[slot] << 1;
    }
    slot = (slot + 1) & table_mask_;
  }
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(Node{var, low, high});
  table_[slot] = idx;
  ++unique_inserts_;
  peak_nodes_ = std::max(peak_nodes_, nodes_.size());
  // Grow at 3/4 load: lower thresholds measured slower here — the extra
  // rehash passes cost more than the longer probe runs they avoid.
  if (nodes_.size() * 4 >= table_.size() * 3) grow_table();
  return idx << 1;
}

BddRef BddManager::make_node(std::uint32_t var, BddRef low, BddRef high) {
  if (low == high) return low;  // reduction rule
  // Canonical form: the stored low edge is never complemented. Push a
  // complemented low up to the parent edge: node(v,¬a,¬b) == ¬node(v,a,b).
  if (low & 1U) {
    return hash_cons(var, low ^ 1U, high ^ 1U) ^ 1U;
  }
  return hash_cons(var, low, high);
}

void BddManager::grow_table() {
  table_.assign(table_.size() * 2, 0);
  table_mask_ = static_cast<std::uint32_t>(table_.size() - 1);
  rebuild_table();
  // Keep the op cache roughly half the unique table so a hot build does
  // not thrash a tiny cache (lossy: resizing drops prior entries).
  const std::size_t want =
      std::clamp(table_.size() / 2, kMinCache, kMaxCache);
  if (want > cache_.size()) {
    cache_.assign(want, CacheEntry{});
    cache_mask_ = static_cast<std::uint32_t>(cache_.size() - 1);
  }
}

void BddManager::rebuild_table() {
  std::fill(table_.begin(), table_.end(), 0U);
  for (std::uint32_t idx = 1; idx < nodes_.size(); ++idx) {
    const Node& n = nodes_[idx];
    std::size_t slot = mix3(n.var, n.low, n.high) & table_mask_;
    while (table_[slot] != 0) slot = (slot + 1) & table_mask_;
    table_[slot] = idx;
  }
}

void BddManager::bump_generation() {
  if (++generation_ == 0) {
    // Wrapped: stale entries could alias stamp 0; wipe them once. The
    // floor must drop too, or wiped (stamp-0) entries could alias the
    // previous-generation survival test while generation_ is 1.
    std::fill(cache_.begin(), cache_.end(), CacheEntry{});
    generation_ = 1;
    last_floor_ = 0;
  }
}

void BddManager::rollback(Checkpoint cp) {
  if (cp.nodes < 1 || cp.nodes > nodes_.size()) {
    throw std::invalid_argument{"BddManager::rollback: bad checkpoint"};
  }
  if (cp.nodes == nodes_.size()) return;  // nothing was built above it
  nodes_.resize(cp.nodes);
  rebuild_table();
  // Op-cache entries may reference truncated nodes: bump the generation.
  // Entries referencing only nodes below the watermark survive one
  // generation via the max_node tag (revalidated and re-stamped on hit),
  // so the resident-logical work below the watermark keeps its cache.
  last_floor_ = cp.nodes;
  bump_generation();
  ++rollbacks_;
  if (paranoid_invariants_enabled()) {
    SCOUT_CHECK(check_invariants(),
                "BddManager: structural invariants violated after rollback"
                " to watermark "
                    << cp.nodes << " (SCOUT_BDD_PARANOID)");
  }
}

BddRef BddManager::var(std::uint32_t index) {
  if (index >= var_count_) throw std::out_of_range{"BddManager::var"};
  return make_node(index, kBddFalse, kBddTrue);
}

BddRef BddManager::nvar(std::uint32_t index) {
  if (index >= var_count_) throw std::out_of_range{"BddManager::nvar"};
  return make_node(index, kBddTrue, kBddFalse);
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal rules.
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (f == g) {
    g = kBddTrue;  // ITE(f, f, h) = ITE(f, 1, h)
  } else if (f == (g ^ 1U)) {
    g = kBddFalse;  // ITE(f, ¬f, h) = ITE(f, 0, h)
  }
  if (f == h) {
    h = kBddFalse;  // ITE(f, g, f) = ITE(f, g, 0)
  } else if (f == (h ^ 1U)) {
    h = kBddTrue;  // ITE(f, g, ¬f) = ITE(f, g, 1)
  }
  if (g == kBddTrue && h == kBddFalse) return f;
  if (g == kBddFalse && h == kBddTrue) return f ^ 1U;
  if (g == h) return g;

  // Commutative standard triples: pick a canonical argument order so
  // equivalent calls share one cache entry. `before` orders by top
  // variable, then node index (both operands are non-terminal here: the
  // mixed-terminal forms were all resolved above).
  const auto before = [this](BddRef a, BddRef b) noexcept {
    const Node& na = node(a);
    const Node& nb = node(b);
    if (na.var != nb.var) return na.var < nb.var;
    return index_of(a) < index_of(b);
  };
  if (g == kBddTrue) {  // f ∨ h == ITE(h, 1, f)
    if (before(h, f)) std::swap(f, h);
  } else if (h == kBddFalse) {  // f ∧ g == ITE(g, f, 0)
    if (before(g, f)) std::swap(f, g);
  } else if (g == kBddFalse) {  // ¬f ∧ h == ITE(¬h, 0, ¬f)
    if (before(h, f)) {
      const BddRef t = f;
      f = h ^ 1U;
      h = t ^ 1U;
    }
  } else if (h == kBddTrue) {  // ¬f ∨ g == ITE(¬g, ¬f, 1)
    if (before(g, f)) {
      const BddRef t = f;
      f = g ^ 1U;
      g = t ^ 1U;
    }
  } else if (g == (h ^ 1U)) {  // f XNOR g == ITE(g, f, ¬f)
    if (before(g, f)) {
      const BddRef t = f;
      f = g;
      g = t;
      h = t ^ 1U;
    }
  }

  // Complement canonicalization: first argument regular, then-branch
  // regular (complement pulled out of the result).
  if (f & 1U) {
    f ^= 1U;
    std::swap(g, h);
  }
  bool negate_result = false;
  if (g & 1U) {
    negate_result = true;
    g ^= 1U;
    h ^= 1U;
  }

  ++cache_lookups_;
  const std::size_t slot = mix3(f, g, h) & cache_mask_;
  {
    CacheEntry& e = cache_[slot];
    // Current generation, or survived the last rollback: an entry from the
    // immediately preceding generation whose nodes all sit below that
    // rollback's watermark was untouched by the truncation.
    const bool live =
        e.stamp == generation_ ||
        (e.stamp + 1 == generation_ && e.max_node < last_floor_);
    if (live && e.f == f && e.g == g && e.h == h) {
      e.stamp = generation_;  // keep hot survivors alive across rollbacks
      ++cache_hits_;
      return negate_result ? (e.result ^ 1U) : e.result;
    }
  }

  // Copies, not references: the recursion below may reallocate the pool.
  const Node nf = node(f);
  const Node ng = node(g);
  const Node nh = node(h);
  const std::uint32_t v = std::min({nf.var, ng.var, nh.var});
  // Cofactors; a complemented edge complements both children (the low
  // child is stored regular, so folding the parent's bit is enough).
  const BddRef f0 = nf.var == v ? nf.low : f;
  const BddRef f1 = nf.var == v ? nf.high : f;
  const BddRef g0 = ng.var == v ? ng.low : g;
  const BddRef g1 = ng.var == v ? ng.high : g;
  const BddRef h0 = nh.var == v ? (nh.low ^ (h & 1U)) : h;
  const BddRef h1 = nh.var == v ? (nh.high ^ (h & 1U)) : h;

  const BddRef lo = ite(f0, g0, h0);
  const BddRef hi = ite(f1, g1, h1);
  const BddRef result = make_node(v, lo, hi);

  const std::uint32_t max_node =
      std::max(std::max(index_of(f), index_of(g)),
               std::max(index_of(h), index_of(result)));
  cache_[slot] = CacheEntry{f, g, h, result, generation_, max_node};
  return negate_result ? (result ^ 1U) : result;
}

BddRef BddManager::cube(const BddCube& literals) {
  // Build bottom-up in descending variable order so each make_node call is
  // O(1) — no ITE needed for a pure conjunction of literals. Rule encoding
  // (packet_encoding) emits literals in strictly ascending order, so the
  // common case just walks the input backwards without copying or sorting.
  bool ascending = true;
  for (std::size_t i = 1; i < literals.size(); ++i) {
    if (literals[i - 1].var >= literals[i].var) {
      ascending = false;
      break;
    }
  }
  const auto fold = [this](auto first, auto last) {
    BddRef acc = kBddTrue;
    std::uint32_t prev_var = var_count_;
    for (auto it = first; it != last; ++it) {
      if (it->var >= var_count_) throw std::out_of_range{"BddManager::cube"};
      if (it->var == prev_var) {
        throw std::invalid_argument{"BddManager::cube: duplicate variable"};
      }
      prev_var = it->var;
      acc = it->positive ? make_node(it->var, kBddFalse, acc)
                         : make_node(it->var, acc, kBddFalse);
    }
    return acc;
  };
  if (ascending) return fold(literals.rbegin(), literals.rend());
  BddCube sorted = literals;
  std::sort(sorted.begin(), sorted.end(),
            [](const BddLiteral& a, const BddLiteral& b) {
              return a.var > b.var;
            });
  return fold(sorted.begin(), sorted.end());
}

bool BddManager::evaluate(BddRef f,
                          const std::vector<bool>& assignment) const {
  SCOUT_DCHECK(assignment.size() >= var_count_,
               "evaluate: " << assignment.size() << " values for "
                            << var_count_ << " variables");
  while (!is_terminal(f)) {
    const Node& n = node(f);
    f = (assignment[n.var] ? n.high : n.low) ^ (f & 1U);
  }
  return f == kBddTrue;
}

void BddManager::ensure_query_scratch() const {
  if (visit_stamp_.size() < nodes_.size() * 2) {
    visit_stamp_.resize(nodes_.size() * 2, 0);
  }
  if (sat_stamp_.size() < nodes_.size() * 2) {
    sat_stamp_.resize(nodes_.size() * 2, 0);
    sat_memo_.resize(nodes_.size() * 2, 0.0);
  }
}

std::uint32_t BddManager::next_query_epoch() const {
  if (++query_epoch_ == 0) {
    // Wrapped: stale stamps could alias epoch 0; reset them once.
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0U);
    std::fill(sat_stamp_.begin(), sat_stamp_.end(), 0U);
    query_epoch_ = 1;
  }
  return query_epoch_;
}

bool BddManager::intersects_cube(BddRef f, const BddCube& partial) const {
  // phase_[v]: -1 unconstrained, 0 forced low, 1 forced high. The scratch
  // lives in the manager and is restored to -1 before returning, so the
  // per-rule loop in the checker allocates nothing. Validate before the
  // first write: a mid-loop throw must not leave phases behind for later
  // calls.
  for (const auto& lit : partial) {
    if (lit.var >= var_count_) {
      throw std::out_of_range{"BddManager::intersects_cube"};
    }
  }
  for (const auto& lit : partial) phase_[lit.var] = lit.positive ? 1 : 0;
  ensure_query_scratch();
  const std::uint32_t epoch = next_query_epoch();

  // DFS with a timestamped visited array keyed by (node, complement): a
  // ref that failed once under this cube always fails (the cube fixes the
  // same branch every time we reach it).
  bool found = false;
  walk_stack_.clear();
  walk_stack_.push_back(f);
  while (!walk_stack_.empty()) {
    const BddRef cur = walk_stack_.back();
    walk_stack_.pop_back();
    if (cur == kBddTrue) {
      found = true;
      break;
    }
    if (cur == kBddFalse || visit_stamp_[cur] == epoch) continue;
    visit_stamp_[cur] = epoch;
    const Node& n = node(cur);
    const BddRef c = cur & 1U;
    const std::int8_t ph = phase_[n.var];
    if (ph != 1) walk_stack_.push_back(n.low ^ c);
    if (ph != 0) walk_stack_.push_back(n.high ^ c);
  }
  for (const auto& lit : partial) phase_[lit.var] = -1;
  return found;
}

double BddManager::sat_count(BddRef f) const {
  if (f == kBddFalse) return 0.0;
  if (f == kBddTrue) return powers_[var_count_];
  ensure_query_scratch();
  const std::uint32_t epoch = next_query_epoch();

  // memo[ref] = satisfying assignments of the function at `ref` over
  // variables [var(ref), var_count). Memoized per *ref* — both phases of a
  // node — so every contribution is a sum of path products: computing a
  // complement as 2^k - m would cancel catastrophically in a 68-variable
  // space (a 1-packet set under a 2^56 subtraction rounds to 0). Explicit
  // post-order stack: no std::function, no recursion.
  walk_stack_.clear();
  walk_stack_.push_back(f);
  while (!walk_stack_.empty()) {
    const BddRef cur = walk_stack_.back();
    if (sat_stamp_[cur] == epoch) {
      walk_stack_.pop_back();
      continue;
    }
    const Node& n = node(cur);
    const BddRef lo = n.low ^ (cur & 1U);   // cofactors under complement
    const BddRef hi = n.high ^ (cur & 1U);
    bool ready = true;
    if (!is_terminal(lo) && sat_stamp_[lo] != epoch) {
      walk_stack_.push_back(lo);
      ready = false;
    }
    if (!is_terminal(hi) && sat_stamp_[hi] != epoch) {
      walk_stack_.push_back(hi);
      ready = false;
    }
    if (!ready) continue;
    walk_stack_.pop_back();
    const auto edge = [&](BddRef r) -> double {
      // Count of r over variables [n.var + 1, var_count).
      if (is_terminal(r)) {
        return r == kBddTrue ? powers_[var_count_ - n.var - 1] : 0.0;
      }
      const std::uint32_t cv = node(r).var;
      return sat_memo_[r] * powers_[cv - n.var - 1];
    };
    sat_memo_[cur] = edge(lo) + edge(hi);
    sat_stamp_[cur] = epoch;
  }

  return sat_memo_[f] * powers_[node(f).var];  // vars above the root are free
}

std::vector<std::int8_t> BddManager::any_sat(BddRef f) const {
  if (f == kBddFalse) {
    throw std::invalid_argument{"any_sat: unsatisfiable"};
  }
  std::vector<std::int8_t> assignment(var_count_, -1);
  while (!is_terminal(f)) {
    const Node& n = node(f);
    const BddRef lo = n.low ^ (f & 1U);
    if (lo != kBddFalse) {
      assignment[n.var] = 0;
      f = lo;
    } else {
      assignment[n.var] = 1;
      f = n.high ^ (f & 1U);
    }
  }
  return assignment;
}

std::size_t BddManager::dag_size(BddRef f) const {
  ensure_query_scratch();
  const std::uint32_t epoch = next_query_epoch();
  // Visited per node index (stamped at slot idx*2; complement ignored).
  std::size_t count = 0;
  walk_stack_.clear();
  walk_stack_.push_back(index_of(f));
  while (!walk_stack_.empty()) {
    const std::uint32_t idx = walk_stack_.back();
    walk_stack_.pop_back();
    if (visit_stamp_[idx * 2] == epoch) continue;
    visit_stamp_[idx * 2] = epoch;
    ++count;
    if (idx == 0) continue;
    walk_stack_.push_back(index_of(nodes_[idx].low));
    walk_stack_.push_back(index_of(nodes_[idx].high));
  }
  return count;
}

bool BddManager::check_invariants() const {
  if (nodes_.empty() || nodes_[0].var != kTermVar) return false;
  std::size_t in_table = 0;
  for (std::uint32_t idx = 1; idx < nodes_.size(); ++idx) {
    const Node& n = nodes_[idx];
    if (n.var >= var_count_) return false;
    if (n.low & 1U) return false;  // low edge never complemented
    if (n.low == n.high) return false;
    // Bounds before dereference: a dangling edge is exactly the corruption
    // this check exists to report, not to crash on.
    if (index_of(n.low) >= nodes_.size() || index_of(n.high) >= nodes_.size()) {
      return false;
    }
    const auto child_var = [this](BddRef r) {
      return nodes_[index_of(r)].var;  // kTermVar for the terminal
    };
    if (child_var(n.low) <= n.var || child_var(n.high) <= n.var) return false;
    // Exactly this node under its key in the unique table.
    std::size_t slot = mix3(n.var, n.low, n.high) & table_mask_;
    while (table_[slot] != 0) {
      if (table_[slot] == idx) {
        ++in_table;
        break;
      }
      const Node& o = nodes_[table_[slot]];
      if (o.var == n.var && o.low == n.low && o.high == n.high) {
        return false;  // duplicate node
      }
      slot = (slot + 1) & table_mask_;
    }
  }
  return in_table == nodes_.size() - 1;
}

BddManager::Stats BddManager::stats() const noexcept {
  Stats s;
  s.nodes = nodes_.size();
  s.peak_nodes = peak_nodes_;
  s.unique_capacity = table_.size();
  s.unique_load =
      static_cast<double>(nodes_.size()) / static_cast<double>(table_.size());
  s.cache_capacity = cache_.size();
  s.unique_inserts = unique_inserts_;
  s.cache_lookups = cache_lookups_;
  s.cache_hits = cache_hits_;
  s.rollbacks = rollbacks_;
  s.rollback_floor = last_floor_;
  return s;
}

}  // namespace scout
